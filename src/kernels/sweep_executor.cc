#include "kernels/sweep_executor.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#ifndef _WIN32
#include <cerrno>
#include <cstring>
#include <sys/stat.h>
#include <sys/types.h>
#endif

#include "kernels/repro_capsule.hh"
#include "kernels/sweep_journal.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

namespace
{

/** JSON string escaping for failure diagnostics. */
std::string
jsonEscape(const std::string &s)
{
    return json::escape(s);
}

/** Per-attempt fault-seed advance: a retry of a fault-injected point
 *  must explore a different fault timeline, not replay the failure. */
constexpr std::uint64_t kRetrySeedStep = 0x9e3779b97f4a7c15ULL;

/** Create the quarantine directory (existing is fine). */
void
ensureDirectory(const std::string &path)
{
#ifndef _WIN32
    if (mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) {
        throw SimError(SimErrorKind::Config, "quarantine", kNeverCycle,
                       csprintf("cannot create directory '%s': %s",
                                path.c_str(), std::strerror(errno)));
    }
#endif
}

} // anonymous namespace

void
SweepReport::dumpJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"points\": " << points.size() << ",\n"
       << "  \"ok\": " << ok << ",\n"
       << "  \"retried\": " << retried << ",\n"
       << "  \"failed\": " << failed << ",\n"
       << "  \"simTicks\": " << simTicks << ",\n"
       << "  \"cyclesSkipped\": " << cyclesSkipped << ",\n"
       << "  \"failures\": [";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const PointFailure &f = failures[i];
        os << (i ? ",\n    " : "\n    ") << "{\"index\": " << f.index
           << ", \"system\": \"" << systemShortName(f.system)
           << "\", \"kernel\": \"" << kernelSpec(f.kernel).name
           << "\", \"stride\": " << f.stride
           << ", \"alignment\": " << f.alignment
           << ", \"attempts\": " << f.attempts << ", \"error\": \""
           << jsonEscape(f.error) << "\"}";
    }
    os << (failures.empty() ? "],\n" : "\n  ],\n") << "  \"quarantine\": [";
    for (std::size_t i = 0; i < quarantine.size(); ++i) {
        const QuarantineRecord &q = quarantine[i];
        os << (i ? ",\n    " : "\n    ") << "{\"index\": " << q.index
           << ", \"attempts\": " << q.attempts << ", \"fingerprint\": \""
           << csprintf("%016llx",
                       static_cast<unsigned long long>(q.fingerprint))
           << "\", \"faultSeed\": " << q.faultSeed << ", \"capsule\": \""
           << jsonEscape(q.capsulePath) << "\", \"error\": \""
           << jsonEscape(q.error) << "\"}";
    }
    os << (quarantine.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

SweepExecutor::SweepExecutor(unsigned jobs) : workerCount(jobs)
{
    if (workerCount == 0) {
        workerCount = std::thread::hardware_concurrency();
        if (workerCount == 0)
            workerCount = 1;
    }
    statSet.addScalar("sweep.points", &statPoints);
    statSet.addScalar("sweep.simCycles", &statSimCycles);
    statSet.addScalar("sweep.simTicks", &statSimTicks);
    statSet.addScalar("sweep.cyclesSkipped", &statCyclesSkipped);
    statSet.addScalar("sweep.mismatches", &statMismatches);
    statSet.addScalar("sweep.retries", &statRetries);
    statSet.addScalar("sweep.failures", &statFailures);
    statSet.addDistribution("sweep.pointMillis", &statPointMillis);
}

void
SweepExecutor::setMaxAttempts(unsigned attempts)
{
    attemptBudget = std::max(1u, attempts);
}

TaskReport
SweepExecutor::runTasks(std::size_t count, const TaskFn &task,
                        const TaskDoneFn &observer)
{
    TaskReport report;
    std::atomic<std::size_t> next{0};
    std::mutex lock;
    std::size_t done = 0;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;

            auto t0 = std::chrono::steady_clock::now();
            bool succeeded = false;
            unsigned attempts = 0;
            std::string last_error;
            while (attempts < attemptBudget) {
                bool retryable = true;
                try {
                    task(i, attempts);
                    succeeded = true;
                } catch (const SimError &e) {
                    last_error = e.what();
                    // A watchdog expiry is deterministic for a given
                    // request — burning the rest of the attempt budget
                    // on it just multiplies the timeout.
                    retryable = e.kind() != SimErrorKind::Watchdog;
                } catch (const std::exception &e) {
                    last_error = e.what();
                }
                ++attempts;
                if (succeeded || !retryable)
                    break;
            }
            double millis =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

            std::lock_guard<std::mutex> guard(lock);
            ++statPoints;
            statRetries += attempts - 1;
            if (!succeeded) {
                ++statFailures;
                report.failures.push_back({i, attempts, last_error});
            }
            statPointMillis.sample(static_cast<std::uint64_t>(millis));
            ++done;
            if (succeeded) {
                if (attempts > 1)
                    ++report.retried;
                else
                    ++report.ok;
            } else {
                ++report.failed;
            }
            if (observer)
                observer({i, attempts, succeeded, millis, done, count,
                          last_error});
        }
    };

    std::size_t n = std::min<std::size_t>(workerCount, count);
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    // Failures were appended in completion order; report them in
    // batch order so the report is deterministic across worker counts.
    std::sort(report.failures.begin(), report.failures.end(),
              [](const TaskFailure &a, const TaskFailure &b) {
                  return a.index < b.index;
              });
    return report;
}

SweepReport
SweepExecutor::runReport(const std::vector<SweepRequest> &grid)
{
    SweepReport report;
    report.points.resize(grid.size());

    const bool journaled = !checkpoint.journalPath.empty();
    const bool quarantining = !checkpoint.quarantineDir.empty();

    // The effective request of one attempt: the executor's default
    // wall-clock watchdog, plus the per-retry fault-seed advance (a
    // retry of a fault-injected point must explore a different fault
    // timeline, not replay the failure).
    auto effectiveRequest = [&](std::size_t i, unsigned attempt) {
        SweepRequest req = grid[i];
        if (pointTimeoutMillis > 0.0 &&
            req.limits.timeoutMillis <= 0.0) {
            req.limits.timeoutMillis = pointTimeoutMillis;
        }
        if (attempt > 0 && req.config.faults.enabled())
            req.config.faults.seed += kRetrySeedStep * attempt;
        return req;
    };

    auto capsulePathFor = [&](std::size_t index) {
        return checkpoint.quarantineDir +
               csprintf("/capsule-%zu.json", index);
    };

    // Restore a journaled point into the report and the executor
    // stats, exactly as completing it live would have.
    auto restorePoint = [&](const JournalRecord &rec) {
        const SweepRequest &req = grid[rec.index];
        const SweepPoint &p = rec.point;
        if (p.system != req.system || p.kernel != req.kernel ||
            p.stride != req.stride || p.alignment != req.alignment) {
            throw SimError(
                SimErrorKind::Corruption, "journal", kNeverCycle,
                csprintf("record %zu does not match the request grid",
                         rec.index));
        }
        report.points[rec.index] = p;
        ++report.resumed;
        ++statPoints;
        statRetries += p.attempts - 1;
        statSimCycles += p.cycles;
        statSimTicks += p.simTicks;
        statCyclesSkipped += p.cyclesSkipped;
        statMismatches += p.mismatches;
        report.simTicks += p.simTicks;
        report.cyclesSkipped += p.cyclesSkipped;
        switch (p.status) {
          case PointStatus::Ok:
            ++report.ok;
            break;
          case PointStatus::Retried:
            ++report.retried;
            break;
          case PointStatus::Failed:
            ++report.failed;
            ++statFailures;
            report.failures.push_back({rec.index, req.system,
                                       req.kernel, req.stride,
                                       req.alignment, p.attempts,
                                       rec.error});
            break;
        }
    };

    std::unique_ptr<SweepJournal> journal;
    std::vector<char> restored(grid.size(), 0);
    if (journaled) {
        const std::uint64_t gridFp = fingerprintGrid(grid);
        std::uint64_t resumeFrom = 0;
        if (checkpoint.resume) {
            SweepJournal::LoadResult loaded = SweepJournal::load(
                checkpoint.journalPath, gridFp, grid.size());
            if (loaded.exists) {
                resumeFrom = loaded.validBytes;
                if (loaded.tornTail) {
                    warn("checkpoint journal '%s' has a torn final "
                         "record (crash mid-append); discarding it",
                         checkpoint.journalPath.c_str());
                }
                // Last record wins per index, though a well-formed
                // journal never repeats one.
                std::vector<const JournalRecord *> byIndex(grid.size(),
                                                           nullptr);
                for (const JournalRecord &rec : loaded.records)
                    byIndex[rec.index] = &rec;
                for (std::size_t i = 0; i < grid.size(); ++i) {
                    if (!byIndex[i])
                        continue;
                    restorePoint(*byIndex[i]);
                    restored[i] = 1;
                }
            }
        }
        journal = std::make_unique<SweepJournal>(checkpoint.journalPath,
                                                 gridFp, grid.size(),
                                                 resumeFrom);
    }
    if (quarantining)
        ensureDirectory(checkpoint.quarantineDir);

    // Only not-yet-restored points run; task index j is a position in
    // `pending`, everything reported maps back through it.
    std::vector<std::size_t> pending;
    pending.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!restored[i])
            pending.push_back(i);
    }

    auto task = [&](std::size_t j, unsigned attempt) {
        const std::size_t i = pending[j];
        SweepRequest req = effectiveRequest(i, attempt);
        try {
            // runPoint builds a fresh system, so each attempt starts
            // from clean state. Distinct indices write distinct slots,
            // so the aggregation is race-free and deterministic.
            report.points[i] = runPoint(req);
        } catch (const SimError &e) {
            const bool finalAttempt =
                e.kind() == SimErrorKind::Watchdog ||
                attempt + 1 >= attemptBudget;
            const std::uint64_t fp = fingerprintRequest(req);
            if (finalAttempt && quarantining) {
                try {
                    writeCapsuleFile(capsulePathFor(i),
                                     {req, attempt + 1, e.what(), fp});
                } catch (const SimError &werr) {
                    warn("cannot write repro capsule for point %zu: %s",
                         i, werr.what());
                }
            }
            // The fingerprint and effective seed name the capsule from
            // the failure text alone.
            throw SimError(
                e.kind(), e.component(), e.cycle(),
                e.detail() +
                    csprintf(" [fingerprint=%016llx faultSeed=%llu]",
                             static_cast<unsigned long long>(fp),
                             static_cast<unsigned long long>(
                                 req.config.faults.seed)));
        }
    };

    auto observe = [&](const TaskProgress &tp) {
        const std::size_t i = pending[tp.index];
        SweepPoint &p = report.points[i];
        if (!tp.ok) {
            const SweepRequest &req = grid[i];
            p = SweepPoint{req.system, req.kernel, req.stride,
                           req.alignment, 0, 0};
            p.status = PointStatus::Failed;
        } else {
            p.status = tp.attempts > 1 ? PointStatus::Retried
                                       : PointStatus::Ok;
        }
        p.attempts = tp.attempts;
        statSimCycles += p.cycles;
        statSimTicks += p.simTicks;
        statCyclesSkipped += p.cyclesSkipped;
        report.simTicks += p.simTicks;
        report.cyclesSkipped += p.cyclesSkipped;
        statMismatches += p.mismatches;
        if (journal) {
            // The observer runs under the executor's lock, so appends
            // are serialized; each append is fsync'd before the next
            // point can report.
            journal->append(
                {i, p, tp.ok ? std::string() : tp.error});
        }
        if (progress)
            progress({tp.done, tp.total, p, tp.millis});
    };

    TaskReport tasks = runTasks(pending.size(), task, observe);
    report.ok += tasks.ok;
    report.retried += tasks.retried;
    report.failed += tasks.failed;
    for (const TaskFailure &f : tasks.failures) {
        const std::size_t i = pending[f.index];
        const SweepRequest &req = grid[i];
        report.failures.push_back({i, req.system, req.kernel,
                                   req.stride, req.alignment,
                                   f.attempts, f.error});
    }
    // Restored and fresh failures interleave; request order is the
    // report's contract.
    std::sort(report.failures.begin(), report.failures.end(),
              [](const PointFailure &a, const PointFailure &b) {
                  return a.index < b.index;
              });
    if (quarantining) {
        for (const PointFailure &f : report.failures) {
            SweepRequest eff = effectiveRequest(f.index, f.attempts - 1);
            report.quarantine.push_back(
                {f.index, f.attempts, fingerprintRequest(eff),
                 eff.config.faults.seed, f.error,
                 capsulePathFor(f.index)});
        }
    }
    return report;
}

std::vector<SweepPoint>
SweepExecutor::run(const std::vector<SweepRequest> &grid)
{
    return runReport(grid).points;
}

std::vector<SweepRequest>
SweepExecutor::chapter6Grid(std::uint32_t elements,
                            const SystemConfig &config)
{
    std::vector<SweepRequest> grid;
    grid.reserve(allSystems().size() * allKernels().size() *
                 paperStrides().size() * alignmentPresets().size());
    for (SystemKind sys : allSystems()) {
        for (KernelId k : allKernels()) {
            for (std::uint32_t s : paperStrides()) {
                for (unsigned a = 0; a < alignmentPresets().size();
                     ++a) {
                    SweepRequest req;
                    req.system = sys;
                    req.kernel = k;
                    req.stride = s;
                    req.alignment = a;
                    req.elements = elements;
                    req.config = config;
                    grid.push_back(req);
                }
            }
        }
    }
    return grid;
}

void
writeCsvHeader(std::ostream &os)
{
    os << "system,kernel,stride,alignment,cycles,mismatches\n";
}

void
writeCsvRow(std::ostream &os, const SweepPoint &point)
{
    os << systemName(point.system) << ','
       << kernelSpec(point.kernel).name << ',' << point.stride << ','
       << alignmentPresets()[point.alignment].name << ',' << point.cycles
       << ',' << point.mismatches << '\n';
}

void
writeCsv(std::ostream &os, const std::vector<SweepPoint> &points)
{
    writeCsvHeader(os);
    for (const SweepPoint &p : points)
        writeCsvRow(os, p);
}

} // namespace pva
