#include "kernels/sweep_executor.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "sim/sim_error.hh"

namespace pva
{

namespace
{

/** JSON string escaping for failure diagnostics. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Per-attempt fault-seed advance: a retry of a fault-injected point
 *  must explore a different fault timeline, not replay the failure. */
constexpr std::uint64_t kRetrySeedStep = 0x9e3779b97f4a7c15ULL;

} // anonymous namespace

void
SweepReport::dumpJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"points\": " << points.size() << ",\n"
       << "  \"ok\": " << ok << ",\n"
       << "  \"retried\": " << retried << ",\n"
       << "  \"failed\": " << failed << ",\n"
       << "  \"simTicks\": " << simTicks << ",\n"
       << "  \"cyclesSkipped\": " << cyclesSkipped << ",\n"
       << "  \"failures\": [";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const PointFailure &f = failures[i];
        os << (i ? ",\n    " : "\n    ") << "{\"index\": " << f.index
           << ", \"system\": \"" << systemShortName(f.system)
           << "\", \"kernel\": \"" << kernelSpec(f.kernel).name
           << "\", \"stride\": " << f.stride
           << ", \"alignment\": " << f.alignment
           << ", \"attempts\": " << f.attempts << ", \"error\": \""
           << jsonEscape(f.error) << "\"}";
    }
    os << (failures.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

SweepExecutor::SweepExecutor(unsigned jobs) : workerCount(jobs)
{
    if (workerCount == 0) {
        workerCount = std::thread::hardware_concurrency();
        if (workerCount == 0)
            workerCount = 1;
    }
    statSet.addScalar("sweep.points", &statPoints);
    statSet.addScalar("sweep.simCycles", &statSimCycles);
    statSet.addScalar("sweep.simTicks", &statSimTicks);
    statSet.addScalar("sweep.cyclesSkipped", &statCyclesSkipped);
    statSet.addScalar("sweep.mismatches", &statMismatches);
    statSet.addScalar("sweep.retries", &statRetries);
    statSet.addScalar("sweep.failures", &statFailures);
    statSet.addDistribution("sweep.pointMillis", &statPointMillis);
}

void
SweepExecutor::setMaxAttempts(unsigned attempts)
{
    attemptBudget = std::max(1u, attempts);
}

TaskReport
SweepExecutor::runTasks(std::size_t count, const TaskFn &task,
                        const TaskDoneFn &observer)
{
    TaskReport report;
    std::atomic<std::size_t> next{0};
    std::mutex lock;
    std::size_t done = 0;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;

            auto t0 = std::chrono::steady_clock::now();
            bool succeeded = false;
            unsigned attempts = 0;
            std::string last_error;
            while (attempts < attemptBudget) {
                bool retryable = true;
                try {
                    task(i, attempts);
                    succeeded = true;
                } catch (const SimError &e) {
                    last_error = e.what();
                    // A watchdog expiry is deterministic for a given
                    // request — burning the rest of the attempt budget
                    // on it just multiplies the timeout.
                    retryable = e.kind() != SimErrorKind::Watchdog;
                } catch (const std::exception &e) {
                    last_error = e.what();
                }
                ++attempts;
                if (succeeded || !retryable)
                    break;
            }
            double millis =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

            std::lock_guard<std::mutex> guard(lock);
            ++statPoints;
            statRetries += attempts - 1;
            if (!succeeded) {
                ++statFailures;
                report.failures.push_back({i, attempts, last_error});
            }
            statPointMillis.sample(static_cast<std::uint64_t>(millis));
            ++done;
            if (succeeded) {
                if (attempts > 1)
                    ++report.retried;
                else
                    ++report.ok;
            } else {
                ++report.failed;
            }
            if (observer)
                observer({i, attempts, succeeded, millis, done, count});
        }
    };

    std::size_t n = std::min<std::size_t>(workerCount, count);
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    // Failures were appended in completion order; report them in
    // batch order so the report is deterministic across worker counts.
    std::sort(report.failures.begin(), report.failures.end(),
              [](const TaskFailure &a, const TaskFailure &b) {
                  return a.index < b.index;
              });
    return report;
}

SweepReport
SweepExecutor::runReport(const std::vector<SweepRequest> &grid)
{
    SweepReport report;
    report.points.resize(grid.size());

    auto task = [&](std::size_t i, unsigned attempt) {
        SweepRequest req = grid[i];
        if (pointTimeoutMillis > 0.0 &&
            req.limits.timeoutMillis <= 0.0) {
            req.limits.timeoutMillis = pointTimeoutMillis;
        }
        // A retry of a fault-injected point must explore a different
        // fault timeline, not replay the failure.
        if (attempt > 0 && req.config.faults.enabled())
            req.config.faults.seed += kRetrySeedStep * attempt;
        // runPoint builds a fresh system, so each attempt starts from
        // clean state. Distinct indices write distinct slots, so the
        // aggregation is race-free and deterministic.
        report.points[i] = runPoint(req);
    };

    auto observe = [&](const TaskProgress &tp) {
        SweepPoint &p = report.points[tp.index];
        if (!tp.ok) {
            const SweepRequest &req = grid[tp.index];
            p = SweepPoint{req.system, req.kernel, req.stride,
                           req.alignment, 0, 0};
            p.status = PointStatus::Failed;
        } else {
            p.status = tp.attempts > 1 ? PointStatus::Retried
                                       : PointStatus::Ok;
        }
        p.attempts = tp.attempts;
        statSimCycles += p.cycles;
        statSimTicks += p.simTicks;
        statCyclesSkipped += p.cyclesSkipped;
        report.simTicks += p.simTicks;
        report.cyclesSkipped += p.cyclesSkipped;
        statMismatches += p.mismatches;
        if (progress)
            progress({tp.done, tp.total, p, tp.millis});
    };

    TaskReport tasks = runTasks(grid.size(), task, observe);
    report.ok = tasks.ok;
    report.retried = tasks.retried;
    report.failed = tasks.failed;
    for (const TaskFailure &f : tasks.failures) {
        const SweepRequest &req = grid[f.index];
        report.failures.push_back({f.index, req.system, req.kernel,
                                   req.stride, req.alignment,
                                   f.attempts, f.error});
    }
    return report;
}

std::vector<SweepPoint>
SweepExecutor::run(const std::vector<SweepRequest> &grid)
{
    return runReport(grid).points;
}

std::vector<SweepRequest>
SweepExecutor::chapter6Grid(std::uint32_t elements,
                            const SystemConfig &config)
{
    std::vector<SweepRequest> grid;
    grid.reserve(allSystems().size() * allKernels().size() *
                 paperStrides().size() * alignmentPresets().size());
    for (SystemKind sys : allSystems()) {
        for (KernelId k : allKernels()) {
            for (std::uint32_t s : paperStrides()) {
                for (unsigned a = 0; a < alignmentPresets().size();
                     ++a) {
                    SweepRequest req;
                    req.system = sys;
                    req.kernel = k;
                    req.stride = s;
                    req.alignment = a;
                    req.elements = elements;
                    req.config = config;
                    grid.push_back(req);
                }
            }
        }
    }
    return grid;
}

void
writeCsvHeader(std::ostream &os)
{
    os << "system,kernel,stride,alignment,cycles,mismatches\n";
}

void
writeCsvRow(std::ostream &os, const SweepPoint &point)
{
    os << systemName(point.system) << ','
       << kernelSpec(point.kernel).name << ',' << point.stride << ','
       << alignmentPresets()[point.alignment].name << ',' << point.cycles
       << ',' << point.mismatches << '\n';
}

void
writeCsv(std::ostream &os, const std::vector<SweepPoint> &points)
{
    writeCsvHeader(os);
    for (const SweepPoint &p : points)
        writeCsvRow(os, p);
}

} // namespace pva
