#include "kernels/command_unit.hh"

namespace pva
{

VectorCommandUnit::VectorCommandUnit(MemorySystem &sys_,
                                     const KernelTrace &trace_)
    : sys(sys_), trace(trace_),
      state(trace_.ops.size(), OpState::Waiting),
      gathered(trace_.ops.size())
{
}

bool
VectorCommandUnit::service()
{
    for (Completion &c : sys.drainCompletions()) {
        std::size_t i = static_cast<std::size_t>(c.tag);
        state[i] = OpState::Completed;
        gathered[i] = std::move(c.data);
        ++completedCount;
    }

    while (scanFrom < trace.ops.size() &&
           state[scanFrom] == OpState::Completed) {
        ++scanFrom;
    }

    for (std::size_t i = scanFrom; i < trace.ops.size(); ++i) {
        if (state[i] != OpState::Waiting)
            continue;
        bool ready = true;
        for (std::size_t d : trace.ops[i].deps) {
            if (state[d] != OpState::Completed) {
                ready = false;
                break;
            }
        }
        if (!ready)
            continue;
        const KernelOp &op = trace.ops[i];
        const std::vector<Word> *wd =
            op.cmd.isRead ? nullptr : &op.writeData;
        if (!sys.trySubmit(op.cmd, i, wd))
            break; // transaction resources exhausted this cycle
        state[i] = OpState::Submitted;
    }

    return done();
}

} // namespace pva
