#include "kernels/command_unit.hh"

namespace pva
{

VectorCommandUnit::VectorCommandUnit(MemorySystem &sys_,
                                     const KernelTrace &trace_)
    : sys(sys_), trace(trace_),
      state(trace_.ops.size(), OpState::Waiting),
      gathered(trace_.ops.size())
{
    // Pre-size the per-op result buffers so the issue/complete loop
    // below never allocates (construction is the warmup phase).
    for (std::size_t i = 0; i < trace.ops.size(); ++i) {
        if (trace.ops[i].cmd.isRead)
            gathered[i].reserve(trace.ops[i].cmd.length);
    }
    drained.reserve(16);
}

bool
VectorCommandUnit::service()
{
    sys.drainCompletionsInto(drained);
    for (Completion &c : drained) {
        std::size_t i = static_cast<std::size_t>(c.tag);
        state[i] = OpState::Completed;
        gathered[i].assign(c.data.begin(), c.data.end());
        sys.recycleLine(std::move(c.data));
        ++completedCount;
    }

    while (scanFrom < trace.ops.size() &&
           state[scanFrom] == OpState::Completed) {
        ++scanFrom;
    }

    for (std::size_t i = scanFrom; i < trace.ops.size(); ++i) {
        if (state[i] != OpState::Waiting)
            continue;
        bool ready = true;
        for (std::size_t d : trace.ops[i].deps) {
            if (state[d] != OpState::Completed) {
                ready = false;
                break;
            }
        }
        if (!ready)
            continue;
        const KernelOp &op = trace.ops[i];
        const std::vector<Word> *wd =
            op.cmd.isRead ? nullptr : &op.writeData;
        if (!sys.trySubmit(op.cmd, i, wd))
            break; // transaction resources exhausted this cycle
        state[i] = OpState::Submitted;
    }

    return done();
}

} // namespace pva
