#include "kernels/repro_capsule.hh"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

namespace
{

[[noreturn]] void
capsuleError(const std::string &path, const std::string &detail)
{
    throw SimError(SimErrorKind::Config, "capsule", kNeverCycle,
                   path + ": " + detail);
}

const char *
rowPolicyName(RowPolicy policy)
{
    switch (policy) {
      case RowPolicy::Managed:
        return "managed";
      case RowPolicy::AlwaysOpen:
        return "open";
      case RowPolicy::AlwaysClose:
        return "close";
    }
    return "?";
}

bool
parseRowPolicy(const std::string &name, RowPolicy &out)
{
    if (name == "managed") {
        out = RowPolicy::Managed;
    } else if (name == "open") {
        out = RowPolicy::AlwaysOpen;
    } else if (name == "close") {
        out = RowPolicy::AlwaysClose;
    } else {
        return false;
    }
    return true;
}

const char *
plaVariantName(FirstHitPla::Variant variant)
{
    switch (variant) {
      case FirstHitPla::Variant::FullKi:
        return "fullki";
      case FirstHitPla::Variant::K1Multiply:
        return "k1multiply";
    }
    return "?";
}

bool
parsePlaVariant(const std::string &name, FirstHitPla::Variant &out)
{
    if (name == "fullki") {
        out = FirstHitPla::Variant::FullKi;
    } else if (name == "k1multiply") {
        out = FirstHitPla::Variant::K1Multiply;
    } else {
        return false;
    }
    return true;
}

/** log2 of the internal-bank count (Geometry stores only 1 << bits). */
unsigned
ibankBitsOf(const Geometry &g)
{
    unsigned bits = 0;
    while ((1u << bits) < g.internalBanks())
        ++bits;
    return bits;
}

/** Shared field-extraction state: one flag guards a whole object. */
struct Extract
{
    const json::Value &v;
    const std::string &path;

    const json::Value &
    member(const char *key) const
    {
        const json::Value *f = v.find(key);
        if (!f)
            capsuleError(path, csprintf("missing field '%s'", key));
        return *f;
    }

    std::uint64_t
    u64(const char *key) const
    {
        bool ok = true;
        std::uint64_t n = member(key).asU64(ok);
        if (!ok)
            capsuleError(path,
                         csprintf("field '%s' is not an unsigned "
                                  "integer", key));
        return n;
    }

    unsigned
    u32(const char *key) const
    {
        return static_cast<unsigned>(u64(key));
    }

    double
    real(const char *key) const
    {
        bool ok = true;
        double d = member(key).asDouble(ok);
        if (!ok)
            capsuleError(path,
                         csprintf("field '%s' is not a number", key));
        return d;
    }

    std::string
    str(const char *key) const
    {
        const json::Value &f = member(key);
        if (!f.isString())
            capsuleError(path,
                         csprintf("field '%s' is not a string", key));
        return f.string();
    }

    bool
    boolean(const char *key) const
    {
        const json::Value &f = member(key);
        if (!f.isBool())
            capsuleError(path,
                         csprintf("field '%s' is not a boolean", key));
        return f.boolean();
    }

    Extract
    object(const char *key) const
    {
        const json::Value &f = member(key);
        if (!f.isObject())
            capsuleError(path,
                         csprintf("field '%s' is not an object", key));
        return Extract{f, path};
    }
};

SystemConfig
configFrom(const Extract &e)
{
    SystemConfig c;
    Extract geo = e.object("geometry");
    c.geometry =
        Geometry(geo.u32("banks"), geo.u32("interleave"),
                 geo.u32("colBits"), geo.u32("ibankBits"),
                 geo.u32("rowBits"));
    Extract t = e.object("timing");
    c.timing.tRCD = t.u32("tRCD");
    c.timing.tCL = t.u32("tCL");
    c.timing.tRP = t.u32("tRP");
    c.timing.tRAS = t.u32("tRAS");
    c.timing.tRC = t.u32("tRC");
    c.timing.tWR = t.u32("tWR");
    c.timing.tREFI = t.u32("tREFI");
    c.timing.tRFC = t.u32("tRFC");
    Extract bc = e.object("bc");
    c.bc.fifoEntries = bc.u32("fifoEntries");
    c.bc.vectorContexts = bc.u32("vectorContexts");
    c.bc.lineWords = bc.u32("lineWords");
    c.bc.transactions = bc.u32("transactions");
    c.bc.fhcLatency = bc.u32("fhcLatency");
    c.bc.bypassEnabled = bc.boolean("bypassEnabled");
    if (!parseRowPolicy(bc.str("rowPolicy"), c.bc.rowPolicy))
        capsuleError(e.path, "unknown rowPolicy name");
    if (!parsePlaVariant(bc.str("plaVariant"), c.bc.plaVariant))
        capsuleError(e.path, "unknown plaVariant name");
    c.maxOutstanding = e.u32("maxOutstanding");
    c.optimisticLineReuse = e.boolean("optimisticLineReuse");
    c.timingCheck = e.boolean("timingCheck");
    if (!parseClockingMode(e.str("clocking"), c.clocking))
        capsuleError(e.path, "unknown clocking name");
    c.batchTicking = e.boolean("batchTicking");
    Extract f = e.object("faults");
    c.faults.seed = f.u64("seed");
    c.faults.refreshStallRate = f.real("refreshStallRate");
    c.faults.bcStallRate = f.real("bcStallRate");
    c.faults.dropTransferRate = f.real("dropTransferRate");
    c.faults.corruptFirstHitRate = f.real("corruptFirstHitRate");
    return c;
}

} // anonymous namespace

void
writeCapsule(std::ostream &os, const ReproCapsule &capsule)
{
    const SweepRequest &req = capsule.request;
    const SystemConfig &c = req.config;
    const Geometry &g = c.geometry;
    os << "{\n"
       << "  \"schemaVersion\": " << ReproCapsule::kSchemaVersion
       << ",\n"
       << "  \"kind\": \"" << ReproCapsule::kKind << "\",\n"
       << "  \"fingerprint\": \""
       << csprintf("%016llx", static_cast<unsigned long long>(
                                  capsule.fingerprint))
       << "\",\n"
       << "  \"attempts\": " << capsule.attempts << ",\n"
       << "  \"error\": \"" << json::escape(capsule.error) << "\",\n"
       << "  \"request\": {\n"
       << "    \"system\": \"" << systemShortName(req.system)
       << "\",\n"
       << "    \"kernel\": \"" << kernelSpec(req.kernel).name
       << "\",\n"
       << "    \"stride\": " << req.stride << ",\n"
       << "    \"alignment\": " << req.alignment << ",\n"
       << "    \"elements\": " << req.elements << ",\n"
       << "    \"maxCycles\": " << req.limits.maxCycles << ",\n"
       << "    \"config\": {\n"
       << "      \"geometry\": {\"banks\": " << g.banks()
       << ", \"interleave\": " << g.interleave()
       << ", \"colBits\": " << g.colBits()
       << ", \"ibankBits\": " << ibankBitsOf(g)
       << ", \"rowBits\": " << g.rowBits() << "},\n"
       << "      \"timing\": {\"tRCD\": " << c.timing.tRCD
       << ", \"tCL\": " << c.timing.tCL
       << ", \"tRP\": " << c.timing.tRP
       << ", \"tRAS\": " << c.timing.tRAS
       << ", \"tRC\": " << c.timing.tRC
       << ", \"tWR\": " << c.timing.tWR
       << ", \"tREFI\": " << c.timing.tREFI
       << ", \"tRFC\": " << c.timing.tRFC << "},\n"
       << "      \"bc\": {\"fifoEntries\": " << c.bc.fifoEntries
       << ", \"vectorContexts\": " << c.bc.vectorContexts
       << ", \"lineWords\": " << c.bc.lineWords
       << ", \"transactions\": " << c.bc.transactions
       << ", \"fhcLatency\": " << c.bc.fhcLatency
       << ", \"bypassEnabled\": "
       << (c.bc.bypassEnabled ? "true" : "false")
       << ", \"rowPolicy\": \"" << rowPolicyName(c.bc.rowPolicy)
       << "\", \"plaVariant\": \"" << plaVariantName(c.bc.plaVariant)
       << "\"},\n"
       << "      \"maxOutstanding\": " << c.maxOutstanding << ",\n"
       << "      \"optimisticLineReuse\": "
       << (c.optimisticLineReuse ? "true" : "false") << ",\n"
       << "      \"timingCheck\": "
       << (c.timingCheck ? "true" : "false") << ",\n"
       << "      \"clocking\": \"" << clockingModeName(c.clocking)
       << "\",\n"
       << "      \"batchTicking\": "
       << (c.batchTicking ? "true" : "false") << ",\n"
       << "      \"faults\": "
       << csprintf("{\"seed\": %llu, \"refreshStallRate\": %.17g, "
                   "\"bcStallRate\": %.17g, \"dropTransferRate\": "
                   "%.17g, \"corruptFirstHitRate\": %.17g}",
                   static_cast<unsigned long long>(c.faults.seed),
                   c.faults.refreshStallRate, c.faults.bcStallRate,
                   c.faults.dropTransferRate,
                   c.faults.corruptFirstHitRate)
       << "\n    }\n  }\n}\n";
}

void
writeCapsuleFile(const std::string &path, const ReproCapsule &capsule)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        capsuleError(path, "cannot create capsule file");
    writeCapsule(out, capsule);
    out.flush();
    if (!out)
        capsuleError(path, "capsule write failed");
}

ReproCapsule
loadCapsule(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        capsuleError(path, "cannot open capsule file");
    std::ostringstream buffer;
    buffer << in.rdbuf();

    json::Value doc;
    std::string parseErr;
    if (!json::parse(buffer.str(), doc, parseErr))
        capsuleError(path, "not valid JSON: " + parseErr);
    if (!doc.isObject())
        capsuleError(path, "capsule is not a JSON object");

    Extract e{doc, path};
    std::uint64_t schema = e.u64("schemaVersion");
    if (schema != static_cast<std::uint64_t>(
                      ReproCapsule::kSchemaVersion)) {
        capsuleError(path,
                     csprintf("schemaVersion %llu, expected %d",
                              static_cast<unsigned long long>(schema),
                              ReproCapsule::kSchemaVersion));
    }
    if (e.str("kind") != ReproCapsule::kKind)
        capsuleError(path, "not a " + std::string(ReproCapsule::kKind));

    ReproCapsule capsule;
    capsule.attempts = e.u32("attempts");
    capsule.error = e.str("error");
    std::string fp = e.str("fingerprint");
    capsule.fingerprint =
        std::strtoull(fp.c_str(), nullptr, 16);

    Extract req = e.object("request");
    SweepRequest &r = capsule.request;
    std::string system = req.str("system");
    bool found = false;
    for (SystemKind kind : allSystems()) {
        if (system == systemShortName(kind)) {
            r.system = kind;
            found = true;
        }
    }
    if (!found)
        capsuleError(path, "unknown system '" + system + "'");
    std::string kernel = req.str("kernel");
    found = false;
    for (KernelId k : allKernels()) {
        if (kernelSpec(k).name == kernel) {
            r.kernel = k;
            found = true;
        }
    }
    if (!found)
        capsuleError(path, "unknown kernel '" + kernel + "'");
    r.stride = static_cast<std::uint32_t>(req.u64("stride"));
    r.alignment = req.u32("alignment");
    if (r.alignment >= alignmentPresets().size())
        capsuleError(path, "alignment index out of range");
    r.elements = static_cast<std::uint32_t>(req.u64("elements"));
    r.limits.maxCycles = req.u64("maxCycles");
    r.config = configFrom(req.object("config"));
    r.limits.clocking = r.config.clocking;
    return capsule;
}

SweepPoint
replayCapsule(const ReproCapsule &capsule)
{
    return runPoint(capsule.request);
}

bool
sameSimError(const std::string &a, const std::string &b)
{
    if (a == b)
        return true;
    // Wall-clock watchdog reports embed the elapsed milliseconds;
    // match the invariant parts around the "<N> ms" token.
    static const std::string tag = "wall-clock watchdog expired after ";
    std::size_t pa = a.find(tag);
    std::size_t pb = b.find(tag);
    if (pa == std::string::npos || pb == std::string::npos || pa != pb)
        return false;
    if (a.compare(0, pa, b, 0, pb) != 0)
        return false;
    std::size_t sa = a.find(" ms", pa + tag.size());
    std::size_t sb = b.find(" ms", pb + tag.size());
    if (sa == std::string::npos || sb == std::string::npos)
        return false;
    return a.substr(sa) == b.substr(sb);
}

} // namespace pva
