/**
 * @file
 * Crash-safe checkpointing of sweep progress (docs/ROBUSTNESS.md).
 *
 * A SweepJournal is an append-only JSONL file: one schemaVersion'd
 * header line naming the grid it belongs to (by fingerprint and point
 * count), then one self-contained record line per completed point,
 * flushed and fsync'd before the completion is acknowledged. A sweep
 * killed at any instant therefore leaves a journal whose intact prefix
 * is exactly the set of durably completed points; at worst the final
 * line is torn (partially written), which load() tolerates by
 * truncating to the last intact record.
 *
 * Resume correctness rests on the config fingerprints also defined
 * here: FNV-1a digests over the canonical serialization of everything
 * that determines a point's outcome (system/kernel/stride/alignment/
 * elements, the full SystemConfig including fault plan and clocking,
 * and the cycle budget — but not wall-clock budgets, which never
 * change simulated behavior). A journal only resumes against the grid
 * it was written for; any drift is rejected with a SimError(Config)
 * instead of silently splicing incompatible results.
 */

#ifndef PVA_KERNELS_SWEEP_JOURNAL_HH
#define PVA_KERNELS_SWEEP_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "kernels/sweep.hh"

namespace pva
{

/** @name Config fingerprints
 * Stable 64-bit digests of the simulated-behavior-determining state.
 * @{ */
std::uint64_t fingerprintConfig(const SystemConfig &config);
std::uint64_t fingerprintRequest(const SweepRequest &request);
std::uint64_t fingerprintGrid(const std::vector<SweepRequest> &grid);
/** @} */

/** One durably recorded point completion. */
struct JournalRecord
{
    std::size_t index = 0; ///< Position in the request grid
    SweepPoint point{};    ///< Full outcome (status/attempts included)
    std::string error;     ///< Last attempt's error (failed points)
};

/** Append-only, fsync'd JSONL checkpoint of one sweep (see file
 *  comment). Writes happen under the SweepExecutor's completion lock,
 *  so the journal itself needs no synchronization. */
class SweepJournal
{
  public:
    /** Journal format version (the header's schemaVersion field). */
    static constexpr int kSchemaVersion = 1;
    /** The header's kind tag. */
    static constexpr const char *kKind = "pva-sweep-journal";

    /** Outcome of reading an existing journal. */
    struct LoadResult
    {
        bool exists = false; ///< File was present (even if empty)
        std::vector<JournalRecord> records; ///< Journal order
        bool tornTail = false; ///< A partial final line was discarded
        /** Byte length of the intact prefix (header + whole records);
         *  appending must resume from here, not from the torn tail. */
        std::uint64_t validBytes = 0;
    };

    /**
     * Read @p path and parse its records. A missing file returns
     * exists = false (a fresh start, not an error). A header whose
     * schemaVersion, kind, fingerprint, or point count disagrees with
     * @p fingerprint / @p points throws SimError(Config); an
     * unparsable line throws SimError(Corruption) unless it is the
     * final line, which is tolerated as a torn write.
     */
    static LoadResult load(const std::string &path,
                           std::uint64_t fingerprint,
                           std::size_t points);

    /**
     * Open @p path for appending. When @p resume_from is nonzero the
     * file is truncated to that byte length first (discarding a torn
     * tail found by load()); otherwise the file is created fresh and
     * the header line written. Throws SimError(Config) when the file
     * cannot be opened or written.
     */
    SweepJournal(const std::string &path, std::uint64_t fingerprint,
                 std::size_t points, std::uint64_t resume_from = 0);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Durably append one record: serialize, flush, fsync. */
    void append(const JournalRecord &record);

    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
    std::FILE *file = nullptr;
};

} // namespace pva

#endif // PVA_KERNELS_SWEEP_JOURNAL_HH
