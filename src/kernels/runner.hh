/**
 * @file
 * Drives one kernel trace to completion on one memory system.
 */

#ifndef PVA_KERNELS_RUNNER_HH
#define PVA_KERNELS_RUNNER_HH

#include "core/memory_system.hh"
#include "kernels/kernel.hh"
#include "sim/simulation.hh"

namespace pva
{

/** Outcome of one run. */
struct RunResult
{
    Cycle cycles = 0;          ///< Start of issue to last completion
    std::size_t mismatches = 0; ///< Functional check (0 = correct)
    std::uint64_t simTicks = 0;      ///< Processed cycles
    std::uint64_t cyclesSkipped = 0; ///< Event-clocking skips
    double wallMillis = 0.0;         ///< Wall time inside runUntil
    std::uint64_t cyclesPerSecond = 0; ///< Simulated cycles per second
};

/** Watchdog budgets and clocking for one run (Simulation::runUntil). */
struct RunLimits
{
    Cycle maxCycles = 50000000;  ///< Simulated-cycle watchdog
    double timeoutMillis = 0.0;  ///< Wall-clock watchdog; 0 disables
    ClockingMode clocking = ClockingMode::Event; ///< Stepper choice
};

/** Run @p trace on @p sys; verifies the final memory image. */
RunResult runTrace(MemorySystem &sys, const KernelTrace &trace,
                   const RunLimits &limits = {});

/**
 * Convenience: build the trace for @p kernel under @p config against
 * the system's current memory image and run it.
 */
RunResult runKernelOn(MemorySystem &sys, KernelId kernel,
                      const WorkloadConfig &config,
                      const RunLimits &limits = {});

} // namespace pva

#endif // PVA_KERNELS_RUNNER_HH
