/**
 * @file
 * Drives one kernel trace to completion on one memory system.
 */

#ifndef PVA_KERNELS_RUNNER_HH
#define PVA_KERNELS_RUNNER_HH

#include "core/memory_system.hh"
#include "kernels/kernel.hh"
#include "sim/simulation.hh"

namespace pva
{

/** Outcome of one run. */
struct RunResult
{
    Cycle cycles = 0;          ///< Start of issue to last completion
    std::size_t mismatches = 0; ///< Functional check (0 = correct)
};

/** Run @p trace on @p sys; verifies the final memory image. */
RunResult runTrace(MemorySystem &sys, const KernelTrace &trace);

/**
 * Convenience: build the trace for @p kernel under @p config against
 * the system's current memory image and run it.
 */
RunResult runKernelOn(MemorySystem &sys, KernelId kernel,
                      const WorkloadConfig &config);

} // namespace pva

#endif // PVA_KERNELS_RUNNER_HH
