/**
 * @file
 * The Vector Command Unit: the processor-side issue engine.
 *
 * Models the paper's "infinitely fast CPU that issues memory requests as
 * soon as possible (subject to availability of bus resources)": every
 * cycle it submits, out of order, any trace operation whose dependences
 * have completed, until the memory system's transaction resources fill.
 */

#ifndef PVA_KERNELS_COMMAND_UNIT_HH
#define PVA_KERNELS_COMMAND_UNIT_HH

#include <vector>

#include "core/memory_system.hh"
#include "kernels/kernel.hh"

namespace pva
{

/** Issues a KernelTrace against a MemorySystem. */
class VectorCommandUnit
{
  public:
    VectorCommandUnit(MemorySystem &sys, const KernelTrace &trace);

    /**
     * Drain completions and submit newly ready operations. Call once per
     * cycle (the runner calls it from the simulation loop).
     *
     * @return true when every operation has completed.
     */
    bool service();

    bool done() const { return completedCount == trace.ops.size(); }

    /** Gathered line data per read op (empty for writes / not yet
     *  complete). */
    const std::vector<std::vector<Word>> &readData() const
    {
        return gathered;
    }

  private:
    enum class OpState { Waiting, Submitted, Completed };

    MemorySystem &sys;
    const KernelTrace &trace;
    std::vector<OpState> state;
    std::vector<std::vector<Word>> gathered;
    /** Drain buffer reused across service() calls: completions shuttle
     *  between this vector and the memory system's without touching
     *  the allocator (drainCompletionsInto swaps storage), and each
     *  consumed line buffer is handed back via recycleLine(). */
    std::vector<Completion> drained;
    std::size_t completedCount = 0;
    std::size_t scanFrom = 0; ///< First op not yet completed
};

} // namespace pva

#endif // PVA_KERNELS_COMMAND_UNIT_HH
