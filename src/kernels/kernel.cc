#include "kernels/kernel.hh"

#include <map>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

namespace
{

/** The scalar "a" of saxpy/scale/vaxpy; arbitrary but fixed. */
constexpr Word kScalarA = 3;

const std::vector<KernelSpec> &
specTable()
{
    static const std::vector<KernelSpec> specs = {
        {KernelId::Copy, "copy", 2, {0}, {1}, 1},
        {KernelId::Saxpy, "saxpy", 2, {0, 1}, {1}, 1},
        {KernelId::Scale, "scale", 1, {0}, {0}, 1},
        {KernelId::Swap, "swap", 2, {0, 1}, {0, 1}, 1},
        {KernelId::Tridiag, "tridiag", 3, {1, 2}, {0}, 1},
        {KernelId::Vaxpy, "vaxpy", 3, {0, 1, 2}, {2}, 1},
        {KernelId::Copy2, "copy2", 2, {0}, {1}, 2},
        {KernelId::Scale2, "scale2", 1, {0}, {0}, 2},
    };
    return specs;
}

/**
 * Compute the reference output values for every written stream.
 * Arithmetic is 32-bit wraparound: exact and platform independent.
 *
 * @param vals  initial element values per stream.
 * @param out   computed values per (written) stream.
 */
void
computeReference(const KernelSpec &spec, const WorkloadConfig &cfg,
                 const SparseMemory &mem,
                 const std::vector<std::vector<Word>> &vals,
                 std::vector<std::vector<Word>> &out)
{
    const std::uint32_t L = cfg.elements;
    out.assign(spec.numStreams, {});

    switch (spec.id) {
      case KernelId::Copy:
      case KernelId::Copy2:
        out[1] = vals[0]; // y[i] = x[i]
        break;
      case KernelId::Saxpy:
        out[1].resize(L);
        for (std::uint32_t i = 0; i < L; ++i)
            out[1][i] = vals[1][i] + kScalarA * vals[0][i];
        break;
      case KernelId::Scale:
      case KernelId::Scale2:
        out[0].resize(L);
        for (std::uint32_t i = 0; i < L; ++i)
            out[0][i] = kScalarA * vals[0][i];
        break;
      case KernelId::Swap:
        out[0] = vals[1];
        out[1] = vals[0];
        break;
      case KernelId::Tridiag: {
        // x[i] = z[i] * (y[i] - x[i-1]); x[-1] is the word before the
        // output stream's base (never written, read once by the CPU).
        out[0].resize(L);
        Word prev = mem.read(cfg.streamBases[0] - cfg.stride);
        for (std::uint32_t i = 0; i < L; ++i) {
            out[0][i] = vals[2][i] * (vals[1][i] - prev);
            prev = out[0][i];
        }
        break;
      }
      case KernelId::Vaxpy:
        out[2].resize(L);
        for (std::uint32_t i = 0; i < L; ++i)
            out[2][i] = vals[2][i] + vals[0][i] * vals[1][i];
        break;
    }
}

} // anonymous namespace

const std::vector<KernelId> &
allKernels()
{
    static const std::vector<KernelId> ids = {
        KernelId::Copy,    KernelId::Saxpy, KernelId::Scale,
        KernelId::Swap,    KernelId::Tridiag, KernelId::Vaxpy,
        KernelId::Copy2,   KernelId::Scale2,
    };
    return ids;
}

const KernelSpec &
kernelSpec(KernelId id)
{
    for (const KernelSpec &s : specTable()) {
        if (s.id == id)
            return s;
    }
    panic("unknown kernel id %d", static_cast<int>(id));
}

KernelTrace
buildTrace(const KernelSpec &spec, const WorkloadConfig &cfg,
           const SparseMemory &mem)
{
    if (cfg.streamBases.size() < spec.numStreams) {
        throw SimError(SimErrorKind::Config, "kernel", kNeverCycle,
                       csprintf("kernel %s needs %u stream bases, got %zu",
                                spec.name.c_str(), spec.numStreams,
                                cfg.streamBases.size()));
    }
    if (cfg.elements % cfg.lineWords != 0) {
        throw SimError(SimErrorKind::Config, "kernel", kNeverCycle,
                       csprintf("element count %u must be a multiple of "
                                "the line length %u", cfg.elements,
                                cfg.lineWords));
    }

    const std::uint32_t L = cfg.elements;
    const unsigned lw = cfg.lineWords;
    const std::uint32_t chunks = L / lw;

    // Initial element values per stream.
    std::vector<std::vector<Word>> vals(spec.numStreams);
    for (unsigned s = 0; s < spec.numStreams; ++s) {
        vals[s].resize(L);
        for (std::uint32_t i = 0; i < L; ++i) {
            vals[s][i] = mem.read(cfg.streamBases[s] +
                                  static_cast<WordAddr>(cfg.stride) * i);
        }
    }

    std::vector<std::vector<Word>> out;
    computeReference(spec, cfg, mem, vals, out);

    KernelTrace trace;
    auto chunk_cmd = [&](unsigned stream, std::uint32_t chunk,
                         bool is_read) {
        VectorCommand c;
        c.base = cfg.streamBases[stream] +
                 static_cast<WordAddr>(cfg.stride) * chunk * lw;
        c.stride = cfg.stride;
        c.length = lw;
        c.isRead = is_read;
        return c;
    };

    auto emit_chunk = [&](std::uint32_t chunk) {
        std::vector<std::size_t> read_ids;
        for (unsigned rs : spec.readStreams) {
            KernelOp op;
            op.cmd = chunk_cmd(rs, chunk, true);
            read_ids.push_back(trace.ops.size());
            trace.ops.push_back(std::move(op));
        }
        for (unsigned ws : spec.writeStreams) {
            KernelOp op;
            op.cmd = chunk_cmd(ws, chunk, false);
            op.deps = read_ids;
            op.writeData.assign(out[ws].begin() + chunk * lw,
                                out[ws].begin() + (chunk + 1) * lw);
            trace.ops.push_back(std::move(op));
        }
    };

    if (spec.unroll == 1) {
        for (std::uint32_t c = 0; c < chunks; ++c)
            emit_chunk(c);
    } else {
        // Unrolled: group the commands of `unroll` consecutive chunks
        // per stream (two reads of x, then two writes of y, ...).
        for (std::uint32_t c = 0; c < chunks; c += spec.unroll) {
            std::uint32_t group =
                std::min<std::uint32_t>(spec.unroll, chunks - c);
            std::map<std::uint32_t, std::vector<std::size_t>> reads_of;
            for (unsigned rs : spec.readStreams) {
                for (std::uint32_t g = 0; g < group; ++g) {
                    KernelOp op;
                    op.cmd = chunk_cmd(rs, c + g, true);
                    reads_of[c + g].push_back(trace.ops.size());
                    trace.ops.push_back(std::move(op));
                }
            }
            for (unsigned ws : spec.writeStreams) {
                for (std::uint32_t g = 0; g < group; ++g) {
                    KernelOp op;
                    op.cmd = chunk_cmd(ws, c + g, false);
                    op.deps = reads_of[c + g];
                    op.writeData.assign(
                        out[ws].begin() + (c + g) * lw,
                        out[ws].begin() + (c + g + 1) * lw);
                    trace.ops.push_back(std::move(op));
                }
            }
        }
    }

    // Expected final memory image. Later writes to the same address win
    // (only relevant for overlapping streams, which presets avoid).
    for (unsigned ws : spec.writeStreams) {
        for (std::uint32_t i = 0; i < L; ++i) {
            trace.expectedWrites.emplace_back(
                cfg.streamBases[ws] +
                    static_cast<WordAddr>(cfg.stride) * i,
                out[ws][i]);
        }
    }
    return trace;
}

std::size_t
verifyTrace(const KernelTrace &trace, const SparseMemory &mem)
{
    std::size_t mismatches = 0;
    for (const auto &[addr, value] : trace.expectedWrites) {
        if (mem.read(addr) != value)
            ++mismatches;
    }
    return mismatches;
}

} // namespace pva
