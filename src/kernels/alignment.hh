/**
 * @file
 * The five relative vector alignments of the chapter 6 experiments.
 *
 * Alignment varies "placement of the base addresses within memory
 * banks, within internal banks for a given SDRAM, and within rows or
 * pages for a given internal bank". Each preset skews the base address
 * of each stream differently; streams are otherwise laid out back to
 * back with generous aligned spacing so they never overlap.
 */

#ifndef PVA_KERNELS_ALIGNMENT_HH
#define PVA_KERNELS_ALIGNMENT_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace pva
{

/** One relative-alignment configuration. */
struct AlignmentPreset
{
    std::string name;
    /** Word-address skew applied to stream j (j < 3). */
    std::vector<WordAddr> skews;
};

/** The five presets used throughout the evaluation. */
const std::vector<AlignmentPreset> &alignmentPresets();

/**
 * Compute stream base addresses for @p num_streams streams of
 * @p elements elements at @p stride, under preset @p preset.
 *
 * Streams are spaced by the array span rounded up to a row-stripe
 * boundary (8192 words: one full column sweep of all 16 banks), so that
 * with zero skew every stream starts at the same bank/column/row
 * alignment.
 */
std::vector<WordAddr> streamBases(const AlignmentPreset &preset,
                                  unsigned num_streams,
                                  std::uint32_t stride,
                                  std::uint32_t elements);

} // namespace pva

#endif // PVA_KERNELS_ALIGNMENT_HH
