/**
 * @file
 * The benchmark kernels of Table 2 and their memory-operation traces.
 *
 * Each kernel is a loop over L strided elements of one to three streams
 * (copy, saxpy, scale, swap, tridiag, vaxpy, plus the unrolled copy2 and
 * scale2 variants). Following the paper's methodology the CPU is
 * infinitely fast: the trace contains one cache-line vector command per
 * 32-element chunk per stream, with data dependences only where a write
 * consumes the values of its chunk's reads.
 *
 * Traces carry the actual write data (computed with 32-bit integer
 * semantics against the initial memory image), so running a trace both
 * measures cycles and functionally exercises scatter/gather: tests
 * verify the final memory image against the reference.
 */

#ifndef PVA_KERNELS_KERNEL_HH
#define PVA_KERNELS_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/vector_command.hh"
#include "sim/memory.hh"
#include "sim/types.hh"

namespace pva
{

/** The eight kernel configurations evaluated in chapter 6. */
enum class KernelId
{
    Copy,
    Saxpy,
    Scale,
    Swap,
    Tridiag,
    Vaxpy,
    Copy2,  ///< copy unrolled x2 (grouped vector commands)
    Scale2, ///< scale unrolled x2
};

/** All kernels in the paper's presentation order. */
const std::vector<KernelId> &allKernels();

/** Static description of a kernel. */
struct KernelSpec
{
    KernelId id;
    std::string name;
    unsigned numStreams;                ///< Distinct arrays touched
    std::vector<unsigned> readStreams;  ///< Streams read each iteration
    std::vector<unsigned> writeStreams; ///< Streams written
    unsigned unroll;                    ///< Command grouping factor
};

const KernelSpec &kernelSpec(KernelId id);

/** Workload parameters for one run. */
struct WorkloadConfig
{
    std::uint32_t stride = 1;
    std::uint32_t elements = 1024; ///< L per stream (32 cache lines)
    unsigned lineWords = 32;
    std::vector<WordAddr> streamBases; ///< One base per stream
};

/** One memory operation of a trace. */
struct KernelOp
{
    VectorCommand cmd;             ///< txn id unassigned
    std::vector<std::size_t> deps; ///< Ops that must complete first
    std::vector<Word> writeData;   ///< Dense line for writes
};

/** A complete kernel run: ops in program order plus the expected final
 *  memory image of all written words. */
struct KernelTrace
{
    std::vector<KernelOp> ops;
    std::vector<std::pair<WordAddr, Word>> expectedWrites;
};

/**
 * Build the trace of @p kernel under @p config, computing write data
 * against the current contents of @p mem.
 */
KernelTrace buildTrace(const KernelSpec &kernel,
                       const WorkloadConfig &config,
                       const SparseMemory &mem);

/** Check @p mem against the trace's expected writes. Returns the number
 *  of mismatching words (0 = pass). */
std::size_t verifyTrace(const KernelTrace &trace, const SparseMemory &mem);

} // namespace pva

#endif // PVA_KERNELS_KERNEL_HH
