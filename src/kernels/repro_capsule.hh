/**
 * @file
 * Failure quarantine: standalone repro capsules (docs/ROBUSTNESS.md).
 *
 * When a sweep point exhausts its attempt budget (or trips a
 * watchdog), the executor serializes everything needed to re-execute
 * the failing attempt — the full SystemConfig including the effective
 * fault seed of that attempt, the workload coordinates, the cycle
 * budget, and the error it died with — as one self-contained JSON
 * file. `pva_replay --repro <capsule>` reloads the capsule and reruns
 * the point bit-exactly, so a failure logged by an overnight sweep is
 * reproducible at a desk from the capsule alone, with no knowledge of
 * the sweep's flags or grid position.
 */

#ifndef PVA_KERNELS_REPRO_CAPSULE_HH
#define PVA_KERNELS_REPRO_CAPSULE_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "kernels/sweep.hh"

namespace pva
{

/** Everything needed to re-execute one failed sweep point. */
struct ReproCapsule
{
    /** Capsule format version (the file's schemaVersion field). */
    static constexpr int kSchemaVersion = 1;
    /** The file's kind tag. */
    static constexpr const char *kKind = "pva-repro-capsule";

    /** The failing attempt's exact request: config carries the
     *  *effective* fault seed (base seed plus retry advances), so a
     *  replay walks the same fault timeline. */
    SweepRequest request{};
    unsigned attempts = 0; ///< Attempts the sweep consumed on it
    /** The raw SimError text of the final attempt (as a replay would
     *  reproduce it — without the sweep's log enrichment). */
    std::string error;
    /** fingerprintRequest(request); also embedded in the sweep's log
     *  line, which is how a log line names its capsule. */
    std::uint64_t fingerprint = 0;
};

/** Serialize @p capsule as a standalone JSON document. */
void writeCapsule(std::ostream &os, const ReproCapsule &capsule);

/** Write @p capsule to @p path; throws SimError(Config) on I/O
 *  failure. */
void writeCapsuleFile(const std::string &path,
                      const ReproCapsule &capsule);

/** Parse a capsule file; throws SimError(Config) on a missing or
 *  malformed file, schema mismatch, or unknown enum names. */
ReproCapsule loadCapsule(const std::string &path);

/**
 * Re-execute the capsule's request exactly (a plain runPoint of the
 * recorded request). Reproducing the quarantined failure means this
 * throws the recorded SimError again; returning normally means the
 * failure did not reproduce.
 */
SweepPoint replayCapsule(const ReproCapsule &capsule);

/**
 * Do two SimError texts describe the same failure? Exact match, with
 * one carve-out: wall-clock watchdog messages embed the elapsed
 * milliseconds, so two reports of the same hang differ textually and
 * are matched on everything but the elapsed time.
 */
bool sameSimError(const std::string &a, const std::string &b);

} // namespace pva

#endif // PVA_KERNELS_REPRO_CAPSULE_HH
