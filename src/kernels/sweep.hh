/**
 * @file
 * The chapter 6 experimental grid: kernels x strides x alignments x
 * memory systems. Shared by the figure-reproduction benches and the
 * integration tests.
 *
 * All system construction goes through makeSystem(kind, SystemConfig):
 * the config carries every knob (geometry, timing, bank-controller
 * microarchitecture, baseline accounting) so no caller threads loose
 * parameters by hand. SweepRequest bundles one grid point; the
 * SweepExecutor (sweep_executor.hh) runs many of them concurrently.
 */

#ifndef PVA_KERNELS_SWEEP_HH
#define PVA_KERNELS_SWEEP_HH

#include <memory>
#include <string>
#include <vector>

#include "core/memory_system.hh"
#include "core/pva_unit.hh"
#include "core/system_config.hh"
#include "kernels/alignment.hh"
#include "kernels/kernel.hh"
#include "kernels/runner.hh"

namespace pva
{

/** The four memory systems of section 6.1. */
enum class SystemKind
{
    PvaSdram,
    CacheLine,
    Gathering,
    PvaSram,
};

/** The systems in the canonical grid (and CSV) order. */
const std::vector<SystemKind> &allSystems();

/** Human-readable system name as used in the paper's figures. */
const char *systemName(SystemKind kind);

/** Short lowercase identifier ("pva", "cacheline", "gathering",
 *  "sram") as accepted by the tools' --system flag. */
const char *systemShortName(SystemKind kind);

/** Instantiate a fresh memory system of the given kind under the
 *  given configuration. */
std::unique_ptr<MemorySystem> makeSystem(SystemKind kind,
                                         const SystemConfig &config = {});

/** One grid point to run: where, what, and under which config. */
struct SweepRequest
{
    SystemKind system = SystemKind::PvaSdram;
    KernelId kernel = KernelId::Copy;
    std::uint32_t stride = 1;
    unsigned alignment = 0; ///< Index into alignmentPresets()
    std::uint32_t elements = 1024;
    SystemConfig config{};
    RunLimits limits{}; ///< Per-point watchdog budgets
};

/** How one grid point concluded (see SweepExecutor retry policy). */
enum class PointStatus : std::uint8_t
{
    Ok,      ///< Succeeded on the first attempt
    Retried, ///< Succeeded after at least one failed attempt
    Failed,  ///< All attempts exhausted (cycles/mismatches invalid)
};

/** Cycle count of one (system, kernel, stride, alignment) point. */
struct SweepPoint
{
    SystemKind system;
    KernelId kernel;
    std::uint32_t stride;
    unsigned alignment; ///< Index into alignmentPresets()
    Cycle cycles;
    std::size_t mismatches;
    std::uint64_t simTicks = 0;      ///< Processed cycles
    std::uint64_t cyclesSkipped = 0; ///< Event-clocking skips
    PointStatus status = PointStatus::Ok;
    unsigned attempts = 1; ///< Attempts consumed (1 = no retries)
};

/** Run one grid point. */
SweepPoint runPoint(const SweepRequest &request);

/** Run one grid point of the default (paper-prototype) configuration
 *  (1024-element vectors unless overridden). */
SweepPoint runPoint(SystemKind system, KernelId kernel,
                    std::uint32_t stride, unsigned alignment,
                    std::uint32_t elements = 1024);

/** Min and max cycles across the five alignment presets. */
struct MinMaxCycles
{
    Cycle min;
    Cycle max;
};

MinMaxCycles runAcrossAlignments(SystemKind system, KernelId kernel,
                                 std::uint32_t stride,
                                 std::uint32_t elements = 1024);

/** The strides the paper evaluates. */
const std::vector<std::uint32_t> &paperStrides();

} // namespace pva

#endif // PVA_KERNELS_SWEEP_HH
