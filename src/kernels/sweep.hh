/**
 * @file
 * The chapter 6 experimental grid: kernels x strides x alignments x
 * memory systems. Shared by the figure-reproduction benches and the
 * integration tests.
 */

#ifndef PVA_KERNELS_SWEEP_HH
#define PVA_KERNELS_SWEEP_HH

#include <memory>
#include <string>
#include <vector>

#include "core/memory_system.hh"
#include "core/pva_unit.hh"
#include "kernels/alignment.hh"
#include "kernels/kernel.hh"

namespace pva
{

/** The four memory systems of section 6.1. */
enum class SystemKind
{
    PvaSdram,
    CacheLine,
    Gathering,
    PvaSram,
};

/** Human-readable system name as used in the paper's figures. */
const char *systemName(SystemKind kind);

/** Instantiate a fresh memory system of the given kind. */
std::unique_ptr<MemorySystem> makeSystem(SystemKind kind,
                                         const std::string &name);

/** Cycle count of one (system, kernel, stride, alignment) point. */
struct SweepPoint
{
    SystemKind system;
    KernelId kernel;
    std::uint32_t stride;
    unsigned alignment; ///< Index into alignmentPresets()
    Cycle cycles;
    std::size_t mismatches;
};

/** Run one grid point (1024-element vectors unless overridden). */
SweepPoint runPoint(SystemKind system, KernelId kernel,
                    std::uint32_t stride, unsigned alignment,
                    std::uint32_t elements = 1024);

/**
 * Run one grid point on a PVA system with an explicit configuration
 * (for ablation studies: VC count, row policy, bypass paths, geometry,
 * timing, refresh).
 */
SweepPoint runPvaPoint(const PvaConfig &config, KernelId kernel,
                       std::uint32_t stride, unsigned alignment,
                       std::uint32_t elements = 1024);

/** Min and max cycles across the five alignment presets. */
struct MinMaxCycles
{
    Cycle min;
    Cycle max;
};

MinMaxCycles runAcrossAlignments(SystemKind system, KernelId kernel,
                                 std::uint32_t stride,
                                 std::uint32_t elements = 1024);

/** The strides the paper evaluates. */
const std::vector<std::uint32_t> &paperStrides();

} // namespace pva

#endif // PVA_KERNELS_SWEEP_HH
