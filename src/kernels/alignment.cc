#include "kernels/alignment.hh"

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

namespace
{

/** One column sweep of all 16 banks: 512 cols x 16 banks. */
constexpr WordAddr kRowStripeWords = 8192;

/** Keep workloads away from address 0 (and room for tridiag's x[-1]). */
constexpr WordAddr kRegionBase = 1 << 18;

} // anonymous namespace

const std::vector<AlignmentPreset> &
alignmentPresets()
{
    static const std::vector<AlignmentPreset> presets = {
        // Identical alignment: every stream starts on the same bank,
        // internal bank, and row offset.
        {"aligned", {0, 0, 0}},
        // Consecutive bank skew: stream j starts j banks later.
        {"bank+1", {0, 1, 2}},
        // Larger relatively-prime bank skew.
        {"bank+17", {0, 17, 34}},
        // Same bank and column, different SDRAM internal bank.
        {"ibank", {0, kRowStripeWords, 2 * kRowStripeWords}},
        // Mixed: different internal bank and a bank skew.
        {"mixed", {0, kRowStripeWords + 1, 2 * kRowStripeWords + 17}},
    };
    return presets;
}

std::vector<WordAddr>
streamBases(const AlignmentPreset &preset, unsigned num_streams,
            std::uint32_t stride, std::uint32_t elements)
{
    if (num_streams > preset.skews.size()) {
        throw SimError(SimErrorKind::Config, "alignment", kNeverCycle,
                       csprintf("alignment preset '%s' supports %zu "
                                "streams, need %u", preset.name.c_str(),
                                preset.skews.size(), num_streams));
    }

    // Span of one stream, rounded to a row-stripe boundary, plus one
    // extra stripe so the largest skew cannot overlap the next stream.
    WordAddr span = static_cast<WordAddr>(stride) * elements;
    WordAddr spacing =
        ((span + kRowStripeWords - 1) / kRowStripeWords + 3) *
        kRowStripeWords;

    std::vector<WordAddr> bases(num_streams);
    for (unsigned j = 0; j < num_streams; ++j)
        bases[j] = kRegionBase + j * spacing + preset.skews[j];
    return bases;
}

} // namespace pva
