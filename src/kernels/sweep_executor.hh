/**
 * @file
 * Parallel, fault-tolerant execution of evaluation-grid sweeps.
 *
 * Every grid point is an independent simulation (its own MemorySystem,
 * Simulation clock, and backing store), so the chapter 6 grid is
 * embarrassingly parallel. The SweepExecutor fans requests out to a
 * std::thread pool and aggregates results in *issue order*: the result
 * vector is indexed by request position, so the output — and any CSV
 * derived from it — is byte-identical no matter how many workers ran
 * or how they interleaved.
 *
 * A sweep always completes. Each point runs under a try/catch with a
 * bounded retry budget and per-point watchdogs (simulated cycles and
 * wall clock, see RunLimits): a SimError — protocol violation,
 * detected corruption, bad configuration — fails the attempt, a fresh
 * system is built for the next attempt, and a point whose budget is
 * exhausted is marked Failed in the final SweepReport instead of
 * taking the process down. Watchdog expiries are not retried (a hung
 * point hangs deterministically). When fault injection is enabled, the
 * fault seed is advanced between attempts so a retry explores a
 * different fault timeline rather than replaying the failure.
 *
 * Progress and timing are reported through the standard stats layer:
 * the executor owns a StatSet with completed-point / simulated-cycle /
 * retry / failure counters and a per-point wall-time distribution, and
 * an optional progress callback fires (serialized, in completion
 * order) after each point for live reporting.
 */

#ifndef PVA_KERNELS_SWEEP_EXECUTOR_HH
#define PVA_KERNELS_SWEEP_EXECUTOR_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "kernels/sweep.hh"
#include "sim/stats.hh"

namespace pva
{

/** One generic task that exhausted its attempt budget. */
struct TaskFailure
{
    std::size_t index = 0;  ///< Position in the task batch
    unsigned attempts = 0;  ///< Attempts consumed before giving up
    std::string error;      ///< what() of the last attempt's exception
};

/** Outcome of a runTasks() batch: every task accounted for. */
struct TaskReport
{
    std::size_t ok = 0;      ///< Succeeded on the first attempt
    std::size_t retried = 0; ///< Succeeded after at least one retry
    std::size_t failed = 0;  ///< Exhausted the attempt budget
    std::vector<TaskFailure> failures; ///< In batch (index) order

    bool allOk() const { return failed == 0; }
};

/** Per-task completion snapshot passed to runTasks() observers
 *  (serialized under the executor's lock, in completion order). */
struct TaskProgress
{
    std::size_t index = 0;  ///< Which task finished
    unsigned attempts = 0;  ///< Attempts it consumed
    bool ok = false;        ///< Did any attempt succeed?
    double millis = 0.0;    ///< Wall-clock time across its attempts
    std::size_t done = 0;   ///< Tasks completed so far (this one incl.)
    std::size_t total = 0;  ///< Tasks in the batch
    std::string error;      ///< Last attempt's error (failed tasks)
};

/** Snapshot passed to the progress callback after each point. */
struct SweepProgress
{
    std::size_t done;  ///< Points completed so far (including this one)
    std::size_t total; ///< Points in the sweep
    const SweepPoint &point; ///< The point that just completed
    double millis;     ///< Its wall-clock run time
};

/** Diagnostics for one grid point that exhausted its attempts. */
struct PointFailure
{
    std::size_t index = 0; ///< Position in the request grid
    SystemKind system = SystemKind::PvaSdram;
    KernelId kernel = KernelId::Copy;
    std::uint32_t stride = 1;
    unsigned alignment = 0;
    unsigned attempts = 0;  ///< Attempts consumed before giving up
    std::string error;      ///< what() of the last attempt's exception
};

/** One quarantined grid point: its failure plus the standalone repro
 *  capsule `pva_replay --repro` re-executes (docs/ROBUSTNESS.md). */
struct QuarantineRecord
{
    std::size_t index = 0;  ///< Position in the request grid
    unsigned attempts = 0;  ///< Attempts consumed before quarantine
    /** fingerprintRequest() of the failing attempt's effective
     *  request (retry-advanced fault seed included). */
    std::uint64_t fingerprint = 0;
    std::uint64_t faultSeed = 0; ///< Effective fault seed of that attempt
    std::string error;           ///< As reported in failures[]
    std::string capsulePath;     ///< The written repro capsule
};

/** Outcome of a resilient sweep: every point accounted for. */
struct SweepReport
{
    /** One entry per request, in request order. Failed points carry
     *  status == PointStatus::Failed and zeroed cycle counts. */
    std::vector<SweepPoint> points;
    std::size_t ok = 0;      ///< Succeeded on the first attempt
    std::size_t retried = 0; ///< Succeeded after at least one retry
    std::size_t failed = 0;  ///< Exhausted the attempt budget
    std::vector<PointFailure> failures; ///< In request order
    std::uint64_t simTicks = 0;      ///< Cycles processed, all points
    std::uint64_t cyclesSkipped = 0; ///< Cycles jumped (event clocking)
    /** Failed points with repro capsules, in request order (only
     *  populated when CheckpointOptions::quarantineDir is set). */
    std::vector<QuarantineRecord> quarantine;
    /**
     * Points restored from the checkpoint journal instead of rerun.
     * Deliberately absent from dumpJson(): a resumed sweep's JSON is
     * byte-identical to the uninterrupted run's, which is the
     * checkpoint layer's core guarantee.
     */
    std::size_t resumed = 0;

    bool allOk() const { return failed == 0; }

    /** Machine-readable summary (see docs/ROBUSTNESS.md). */
    void dumpJson(std::ostream &os) const;
};

/** Durability knobs of one runReport() call (docs/ROBUSTNESS.md). */
struct CheckpointOptions
{
    /** Append-only JSONL journal of completed points; empty disables
     *  checkpointing. */
    std::string journalPath;
    /** Restore completed points from an existing journal (matched by
     *  config fingerprint) instead of rerunning them. Without a
     *  journal file this is a normal fresh run. */
    bool resume = false;
    /** Directory for repro capsules of quarantined points; empty
     *  disables capsule writing. Created if missing. */
    std::string quarantineDir;
};

/** Runs sweep grids on a worker pool with deterministic results. */
class SweepExecutor
{
  public:
    /**
     * @param jobs worker thread count; 0 picks
     *             std::thread::hardware_concurrency(). 1 runs inline
     *             on the calling thread (the serial reference path).
     */
    explicit SweepExecutor(unsigned jobs = 0);

    unsigned jobs() const { return workerCount; }

    /** Attempt budget per point (>= 1; default 3). */
    void setMaxAttempts(unsigned attempts);
    unsigned maxAttempts() const { return attemptBudget; }

    /** Default per-point wall-clock watchdog, applied to requests
     *  that do not set RunLimits::timeoutMillis themselves.
     *  0 (the default) leaves requests unchanged. */
    void setPointTimeout(double millis) { pointTimeoutMillis = millis; }

    /** Install the durability layer (checkpoint journal, resume,
     *  failure quarantine) for subsequent runReport() calls. */
    void setCheckpoint(CheckpointOptions options)
    {
        checkpoint = std::move(options);
    }
    const CheckpointOptions &checkpointOptions() const
    {
        return checkpoint;
    }

    using ProgressFn = std::function<void(const SweepProgress &)>;

    /** Install a progress callback. Invoked under an internal lock —
     *  at most one call at a time, in completion order. */
    void onProgress(ProgressFn callback) { progress = std::move(callback); }

    /**
     * Run every request with retry/watchdog isolation; returns the
     * full per-point accounting, in request order regardless of the
     * worker count.
     */
    SweepReport runReport(const std::vector<SweepRequest> &grid);

    /** A generic unit of work: @p index identifies the task, @p
     *  attempt counts retries from 0. Failure is an exception. */
    using TaskFn = std::function<void(std::size_t index,
                                      unsigned attempt)>;

    /** Completion observer; called under the executor's lock, at most
     *  one call at a time, in completion order. */
    using TaskDoneFn = std::function<void(const TaskProgress &)>;

    /**
     * The generic engine underneath runReport(): run @p count
     * independent tasks on the worker pool with the executor's
     * retry/fault-isolation policy. A task reports results by side
     * effect into caller-owned, index-addressed storage, which keeps
     * aggregate output deterministic across worker counts. A thrown
     * SimError(Watchdog) is not retried (a hung task hangs
     * deterministically); any other exception consumes one attempt.
     * Used directly by harnesses whose work items are not kernel grid
     * points — e.g. the traffic layer's offered-load sweeps.
     */
    TaskReport runTasks(std::size_t count, const TaskFn &task,
                        const TaskDoneFn &observer = nullptr);

    /**
     * Run every request; returns one SweepPoint per request, in
     * request order regardless of the worker count. (The points of
     * runReport(); failed points are marked PointStatus::Failed.)
     */
    std::vector<SweepPoint> run(const std::vector<SweepRequest> &grid);

    /** Executor statistics: "sweep.points", "sweep.simCycles",
     *  "sweep.simTicks", "sweep.cyclesSkipped", "sweep.mismatches",
     *  "sweep.retries", "sweep.failures", and the "sweep.pointMillis"
     *  distribution. Accumulates across run() calls. */
    StatSet &stats() { return statSet; }

    /**
     * The full chapter 6 evaluation grid (4 systems x 8 kernels x
     * 6 strides x 5 alignments) in canonical order: systems outermost,
     * then kernels, strides, alignments.
     */
    static std::vector<SweepRequest>
    chapter6Grid(std::uint32_t elements = 1024,
                 const SystemConfig &config = {});

  private:
    unsigned workerCount;
    unsigned attemptBudget = 3;
    double pointTimeoutMillis = 0.0;
    CheckpointOptions checkpoint;
    ProgressFn progress;

    StatSet statSet;
    Scalar statPoints;
    Scalar statSimCycles;
    Scalar statSimTicks;
    Scalar statCyclesSkipped;
    Scalar statMismatches;
    Scalar statRetries;
    Scalar statFailures;
    Distribution statPointMillis{5};
};

/** @name Grid CSV emission
 * The machine-readable format shared by bench_export_csv,
 * `pva_sim --sweep`, and the determinism tests:
 * `system,kernel,stride,alignment,cycles,mismatches` with the paper's
 * system and alignment-preset names.
 * @{ */
void writeCsvHeader(std::ostream &os);
void writeCsvRow(std::ostream &os, const SweepPoint &point);
void writeCsv(std::ostream &os, const std::vector<SweepPoint> &points);
/** @} */

} // namespace pva

#endif // PVA_KERNELS_SWEEP_EXECUTOR_HH
