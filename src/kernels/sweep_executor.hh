/**
 * @file
 * Parallel execution of evaluation-grid sweeps.
 *
 * Every grid point is an independent simulation (its own MemorySystem,
 * Simulation clock, and backing store), so the chapter 6 grid is
 * embarrassingly parallel. The SweepExecutor fans requests out to a
 * std::thread pool and aggregates results in *issue order*: the result
 * vector is indexed by request position, so the output — and any CSV
 * derived from it — is byte-identical no matter how many workers ran
 * or how they interleaved.
 *
 * Progress and timing are reported through the standard stats layer:
 * the executor owns a StatSet with completed-point / simulated-cycle
 * counters and a per-point wall-time distribution, and an optional
 * progress callback fires (serialized, in completion order) after each
 * point for live reporting.
 */

#ifndef PVA_KERNELS_SWEEP_EXECUTOR_HH
#define PVA_KERNELS_SWEEP_EXECUTOR_HH

#include <functional>
#include <ostream>
#include <vector>

#include "kernels/sweep.hh"
#include "sim/stats.hh"

namespace pva
{

/** Snapshot passed to the progress callback after each point. */
struct SweepProgress
{
    std::size_t done;  ///< Points completed so far (including this one)
    std::size_t total; ///< Points in the sweep
    const SweepPoint &point; ///< The point that just completed
    double millis;     ///< Its wall-clock run time
};

/** Runs sweep grids on a worker pool with deterministic results. */
class SweepExecutor
{
  public:
    /**
     * @param jobs worker thread count; 0 picks
     *             std::thread::hardware_concurrency(). 1 runs inline
     *             on the calling thread (the serial reference path).
     */
    explicit SweepExecutor(unsigned jobs = 0);

    unsigned jobs() const { return workerCount; }

    using ProgressFn = std::function<void(const SweepProgress &)>;

    /** Install a progress callback. Invoked under an internal lock —
     *  at most one call at a time, in completion order. */
    void onProgress(ProgressFn callback) { progress = std::move(callback); }

    /**
     * Run every request; returns one SweepPoint per request, in
     * request order regardless of the worker count.
     */
    std::vector<SweepPoint> run(const std::vector<SweepRequest> &grid);

    /** Executor statistics: "sweep.points", "sweep.simCycles",
     *  "sweep.mismatches", and the "sweep.pointMillis" distribution.
     *  Accumulates across run() calls. */
    StatSet &stats() { return statSet; }

    /**
     * The full chapter 6 evaluation grid (4 systems x 8 kernels x
     * 6 strides x 5 alignments) in canonical order: systems outermost,
     * then kernels, strides, alignments.
     */
    static std::vector<SweepRequest>
    chapter6Grid(std::uint32_t elements = 1024,
                 const SystemConfig &config = {});

  private:
    unsigned workerCount;
    ProgressFn progress;

    StatSet statSet;
    Scalar statPoints;
    Scalar statSimCycles;
    Scalar statMismatches;
    Distribution statPointMillis{5};
};

/** @name Grid CSV emission
 * The machine-readable format shared by bench_export_csv,
 * `pva_sim --sweep`, and the determinism tests:
 * `system,kernel,stride,alignment,cycles,mismatches` with the paper's
 * system and alignment-preset names.
 * @{ */
void writeCsvHeader(std::ostream &os);
void writeCsvRow(std::ostream &os, const SweepPoint &point);
void writeCsv(std::ostream &os, const std::vector<SweepPoint> &points);
/** @} */

} // namespace pva

#endif // PVA_KERNELS_SWEEP_EXECUTOR_HH
