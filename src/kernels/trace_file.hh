/**
 * @file
 * Text trace format for driving a memory system from a file.
 *
 * A trace is a sequence of lines; '#' starts a comment. Commands:
 *
 *     poke <addr> <value>                 write a word functionally
 *     read <base> <stride> <length>       vector gather
 *     write <base> <stride> <length> <seed>
 *                                         vector scatter; element i
 *                                         carries the value seed + i
 *     barrier                             wait for all prior commands
 *
 * Numbers are decimal or 0x-prefixed hex; addresses and strides are in
 * words. Reads and writes issue as soon as transaction resources allow
 * (no implicit ordering) unless separated by a barrier.
 */

#ifndef PVA_KERNELS_TRACE_FILE_HH
#define PVA_KERNELS_TRACE_FILE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/memory_system.hh"
#include "core/vector_command.hh"
#include "sim/clocking.hh"

namespace pva
{

/** One parsed trace line. */
struct TraceOp
{
    enum class Kind { Poke, Read, Write, Barrier };

    Kind kind;
    WordAddr addr = 0; ///< Poke target
    Word value = 0;    ///< Poke value / write seed
    VectorCommand cmd; ///< Read/Write vector
};

/** A parsed trace. */
struct TraceFile
{
    std::vector<TraceOp> ops;
};

/**
 * Parse a trace from @p in. Throws no exceptions: returns false and
 * fills @p error (with a line number) on malformed input.
 */
bool parseTrace(std::istream &in, TraceFile &out, std::string &error);

/** Result of replaying a trace. */
struct ReplayResult
{
    Cycle cycles = 0;
    std::uint64_t commands = 0;
    /** Order-independent checksum over all gathered read data. */
    std::uint64_t readChecksum = 0;
    /** Cycles actually processed by the clocking core. */
    std::uint64_t simTicks = 0;
    /** Cycles skipped by event clocking (0 under Exhaustive). */
    std::uint64_t cyclesSkipped = 0;
};

/** Replay @p trace against @p sys until every command completes. */
ReplayResult replayTrace(MemorySystem &sys, const TraceFile &trace,
                         ClockingMode clocking = ClockingMode::Event);

} // namespace pva

#endif // PVA_KERNELS_TRACE_FILE_HH
