#include "kernels/runner.hh"

#include "kernels/command_unit.hh"

namespace pva
{

RunResult
runTrace(MemorySystem &sys, const KernelTrace &trace,
         const RunLimits &limits)
{
    Simulation sim(limits.clocking);
    sim.add(&sys);
    VectorCommandUnit vcu(sys, trace);

    Cycle start = sim.now();
    sim.runUntil([&] { return vcu.service(); }, limits.maxCycles,
                 limits.timeoutMillis);

    RunResult r;
    r.cycles = sim.now() - start;
    r.mismatches = verifyTrace(trace, sys.memory());
    r.simTicks = sim.simTicks();
    r.cyclesSkipped = sim.cyclesSkipped();
    r.wallMillis = sim.wallMillis();
    r.cyclesPerSecond = sim.cyclesPerSecond();
    sys.recordSimPerf(r.simTicks, r.cyclesSkipped, r.cyclesPerSecond);
    return r;
}

RunResult
runKernelOn(MemorySystem &sys, KernelId kernel, const WorkloadConfig &config,
            const RunLimits &limits)
{
    KernelTrace trace = buildTrace(kernelSpec(kernel), config,
                                   sys.memory());
    return runTrace(sys, trace, limits);
}

} // namespace pva
