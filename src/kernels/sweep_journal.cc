#include "kernels/sweep_journal.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

namespace
{

/** FNV-1a over @p data, continuing from @p hash. */
std::uint64_t
fnv1a(const void *data, std::size_t size,
      std::uint64_t hash = 0xcbf29ce484222325ULL)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
fnv1a(const std::string &s, std::uint64_t hash = 0xcbf29ce484222325ULL)
{
    return fnv1a(s.data(), s.size(), hash);
}

/** log2 of the internal-bank count (Geometry stores only 1 << bits). */
unsigned
ibankBitsOf(const Geometry &g)
{
    unsigned bits = 0;
    while ((1u << bits) < g.internalBanks())
        ++bits;
    return bits;
}

const char *
pointStatusName(PointStatus status)
{
    switch (status) {
      case PointStatus::Ok:
        return "ok";
      case PointStatus::Retried:
        return "retried";
      case PointStatus::Failed:
        return "failed";
    }
    return "?";
}

bool
parsePointStatus(const std::string &name, PointStatus &out)
{
    if (name == "ok") {
        out = PointStatus::Ok;
    } else if (name == "retried") {
        out = PointStatus::Retried;
    } else if (name == "failed") {
        out = PointStatus::Failed;
    } else {
        return false;
    }
    return true;
}

bool
systemByShortName(const std::string &name, SystemKind &out)
{
    for (SystemKind kind : allSystems()) {
        if (name == systemShortName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

bool
kernelByName(const std::string &name, KernelId &out)
{
    for (KernelId k : allKernels()) {
        if (kernelSpec(k).name == name) {
            out = k;
            return true;
        }
    }
    return false;
}

[[noreturn]] void
journalError(const std::string &path, SimErrorKind kind,
             const std::string &detail)
{
    throw SimError(kind, "journal", kNeverCycle,
                   path + ": " + detail);
}

std::string
headerLine(std::uint64_t fingerprint, std::size_t points)
{
    return csprintf("{\"schemaVersion\": %d, \"kind\": \"%s\", "
                    "\"fingerprint\": \"%016llx\", \"points\": %zu}\n",
                    SweepJournal::kSchemaVersion, SweepJournal::kKind,
                    static_cast<unsigned long long>(fingerprint),
                    points);
}

std::string
recordLine(const JournalRecord &record)
{
    const SweepPoint &p = record.point;
    return csprintf(
        "{\"index\": %zu, \"system\": \"%s\", \"kernel\": \"%s\", "
        "\"stride\": %u, \"alignment\": %u, \"cycles\": %llu, "
        "\"mismatches\": %zu, \"simTicks\": %llu, "
        "\"cyclesSkipped\": %llu, \"status\": \"%s\", "
        "\"attempts\": %u, \"error\": \"%s\"}\n",
        record.index, systemShortName(p.system),
        kernelSpec(p.kernel).name.c_str(), p.stride, p.alignment,
        static_cast<unsigned long long>(p.cycles), p.mismatches,
        static_cast<unsigned long long>(p.simTicks),
        static_cast<unsigned long long>(p.cyclesSkipped),
        pointStatusName(p.status), p.attempts,
        json::escape(record.error).c_str());
}

/** Extract one journal record; returns false on any missing or
 *  ill-typed field. */
bool
parseRecord(const json::Value &v, JournalRecord &out)
{
    if (!v.isObject())
        return false;
    bool ok = true;
    auto u64 = [&](const char *key, std::uint64_t &dst) {
        const json::Value *f = v.find(key);
        if (!f) {
            ok = false;
            return;
        }
        dst = f->asU64(ok);
    };
    auto str = [&](const char *key, std::string &dst) {
        const json::Value *f = v.find(key);
        if (!f || !f->isString()) {
            ok = false;
            return;
        }
        dst = f->string();
    };

    std::uint64_t index = 0, stride = 0, alignment = 0, cycles = 0;
    std::uint64_t mismatches = 0, simTicks = 0, cyclesSkipped = 0;
    std::uint64_t attempts = 0;
    std::string system, kernel, status, error;
    u64("index", index);
    str("system", system);
    str("kernel", kernel);
    u64("stride", stride);
    u64("alignment", alignment);
    u64("cycles", cycles);
    u64("mismatches", mismatches);
    u64("simTicks", simTicks);
    u64("cyclesSkipped", cyclesSkipped);
    str("status", status);
    u64("attempts", attempts);
    str("error", error);
    if (!ok)
        return false;

    SweepPoint p{};
    if (!systemByShortName(system, p.system) ||
        !kernelByName(kernel, p.kernel) ||
        !parsePointStatus(status, p.status)) {
        return false;
    }
    p.stride = static_cast<std::uint32_t>(stride);
    p.alignment = static_cast<unsigned>(alignment);
    p.cycles = cycles;
    p.mismatches = static_cast<std::size_t>(mismatches);
    p.simTicks = simTicks;
    p.cyclesSkipped = cyclesSkipped;
    p.attempts = static_cast<unsigned>(attempts);
    out.index = static_cast<std::size_t>(index);
    out.point = p;
    out.error = std::move(error);
    return true;
}

} // anonymous namespace

std::uint64_t
fingerprintConfig(const SystemConfig &config)
{
    // Canonical textual serialization of every field that determines
    // simulated behavior. Wall-clock budgets are deliberately absent:
    // they bound the host, not the simulation. Extending SystemConfig
    // without extending this serialization silently weakens resume
    // safety — keep them in lockstep.
    const Geometry &g = config.geometry;
    std::string s = csprintf(
        "geometry:%u,%u,%u,%u,%u;"
        "timing:%u,%u,%u,%u,%u,%u,%u,%u;"
        "bc:%u,%u,%u,%u,%u,%d,%d,%d;"
        "sys:%u,%d,%d,%d,%d;"
        "backend:%d,%u,%u;"
        "faults:%llu,%.17g,%.17g,%.17g,%.17g",
        g.banks(), g.interleave(), g.colBits(), ibankBitsOf(g),
        g.rowBits(), config.timing.tRCD, config.timing.tCL,
        config.timing.tRP, config.timing.tRAS, config.timing.tRC,
        config.timing.tWR, config.timing.tREFI, config.timing.tRFC,
        config.bc.fifoEntries, config.bc.vectorContexts,
        config.bc.lineWords, config.bc.transactions,
        config.bc.fhcLatency, static_cast<int>(config.bc.bypassEnabled),
        static_cast<int>(config.bc.rowPolicy),
        static_cast<int>(config.bc.plaVariant), config.maxOutstanding,
        static_cast<int>(config.optimisticLineReuse),
        static_cast<int>(config.timingCheck),
        static_cast<int>(config.clocking),
        static_cast<int>(config.batchTicking),
        static_cast<int>(config.backend), config.salpSubarrays,
        config.refreshDeferWindow,
        static_cast<unsigned long long>(config.faults.seed),
        config.faults.refreshStallRate, config.faults.bcStallRate,
        config.faults.dropTransferRate,
        config.faults.corruptFirstHitRate);
    return fnv1a(s);
}

std::uint64_t
fingerprintRequest(const SweepRequest &request)
{
    std::string s = csprintf(
        "point:%s,%s,%u,%u,%u;maxCycles:%llu;config:%016llx",
        systemShortName(request.system),
        kernelSpec(request.kernel).name.c_str(), request.stride,
        request.alignment, request.elements,
        static_cast<unsigned long long>(request.limits.maxCycles),
        static_cast<unsigned long long>(
            fingerprintConfig(request.config)));
    return fnv1a(s);
}

std::uint64_t
fingerprintGrid(const std::vector<SweepRequest> &grid)
{
    std::uint64_t hash = fnv1a(csprintf("grid:%zu", grid.size()));
    for (const SweepRequest &req : grid) {
        std::uint64_t fp = fingerprintRequest(req);
        hash = fnv1a(&fp, sizeof(fp), hash);
    }
    return hash;
}

SweepJournal::LoadResult
SweepJournal::load(const std::string &path, std::uint64_t fingerprint,
                   std::size_t points)
{
    LoadResult result;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return result; // no journal yet: a fresh start
    result.exists = true;

    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string content = buffer.str();
    if (content.empty())
        return result; // created but never written: fresh start

    // A line counts as durably written only when its trailing newline
    // made it to disk: the tail after the last '\n' — however much of
    // a record it resembles — is a torn write, tolerated and dropped.
    std::size_t lineStart = 0;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    while (lineStart < content.size()) {
        std::size_t newline = content.find('\n', lineStart);
        if (newline == std::string::npos) {
            result.tornTail = true;
            break;
        }
        std::string line =
            content.substr(lineStart, newline - lineStart);
        ++lineNo;

        json::Value v;
        std::string parseErr;
        if (!json::parse(line, v, parseErr)) {
            journalError(path, SimErrorKind::Corruption,
                         csprintf("unparsable journal line %zu: %s",
                                  lineNo, parseErr.c_str()));
        }
        if (!sawHeader) {
            bool ok = true;
            const json::Value *schema = v.find("schemaVersion");
            const json::Value *kind = v.find("kind");
            const json::Value *fp = v.find("fingerprint");
            const json::Value *count = v.find("points");
            if (!schema || !kind || !kind->isString() || !fp ||
                !fp->isString() || !count) {
                journalError(path, SimErrorKind::Config,
                             "malformed journal header");
            }
            if (schema->asU64(ok) !=
                    static_cast<std::uint64_t>(kSchemaVersion) ||
                !ok) {
                journalError(
                    path, SimErrorKind::Config,
                    csprintf("journal schemaVersion %s, expected %d",
                             schema->numberText().c_str(),
                             kSchemaVersion));
            }
            if (kind->string() != kKind) {
                journalError(path, SimErrorKind::Config,
                             csprintf("journal kind '%s', expected "
                                      "'%s'",
                                      kind->string().c_str(), kKind));
            }
            std::string want = csprintf(
                "%016llx",
                static_cast<unsigned long long>(fingerprint));
            if (fp->string() != want) {
                journalError(
                    path, SimErrorKind::Config,
                    csprintf("journal fingerprint %s does not match "
                             "this sweep's %s — refusing to resume "
                             "against a different grid or config",
                             fp->string().c_str(), want.c_str()));
            }
            if (count->asU64(ok) != points || !ok) {
                journalError(
                    path, SimErrorKind::Config,
                    csprintf("journal covers %s points, sweep has %zu",
                             count->numberText().c_str(), points));
            }
            sawHeader = true;
        } else {
            JournalRecord record;
            if (!parseRecord(v, record)) {
                journalError(
                    path, SimErrorKind::Corruption,
                    csprintf("malformed journal record at line %zu",
                             lineNo));
            }
            if (record.index >= points) {
                journalError(
                    path, SimErrorKind::Corruption,
                    csprintf("journal record index %zu outside the "
                             "%zu-point grid",
                             record.index, points));
            }
            result.records.push_back(std::move(record));
        }
        lineStart = newline + 1;
        result.validBytes = lineStart;
    }
    return result;
}

SweepJournal::SweepJournal(const std::string &path,
                           std::uint64_t fingerprint,
                           std::size_t points,
                           std::uint64_t resume_from)
    : filePath(path)
{
    if (resume_from > 0) {
        // Drop a torn tail before appending: new records must start at
        // the end of the intact prefix, not merge into partial bytes.
        file = std::fopen(path.c_str(), "r+b");
        if (!file) {
            journalError(path, SimErrorKind::Config,
                         csprintf("cannot reopen journal: %s",
                                  std::strerror(errno)));
        }
#ifndef _WIN32
        if (ftruncate(fileno(file),
                      static_cast<off_t>(resume_from)) != 0) {
            std::fclose(file);
            file = nullptr;
            journalError(path, SimErrorKind::Config,
                         csprintf("cannot truncate journal tail: %s",
                                  std::strerror(errno)));
        }
#endif
        std::fseek(file, 0, SEEK_END);
    } else {
        file = std::fopen(path.c_str(), "wb");
        if (!file) {
            journalError(path, SimErrorKind::Config,
                         csprintf("cannot create journal: %s",
                                  std::strerror(errno)));
        }
        std::string header = headerLine(fingerprint, points);
        if (std::fwrite(header.data(), 1, header.size(), file) !=
                header.size() ||
            std::fflush(file) != 0) {
            std::fclose(file);
            file = nullptr;
            journalError(path, SimErrorKind::Config,
                         "cannot write journal header");
        }
#ifndef _WIN32
        fsync(fileno(file));
#endif
    }
}

SweepJournal::~SweepJournal()
{
    if (file)
        std::fclose(file);
}

void
SweepJournal::append(const JournalRecord &record)
{
    std::string line = recordLine(record);
    if (std::fwrite(line.data(), 1, line.size(), file) != line.size() ||
        std::fflush(file) != 0) {
        journalError(filePath, SimErrorKind::Config,
                     csprintf("journal append failed: %s",
                              std::strerror(errno)));
    }
#ifndef _WIN32
    // The durability point: a completion is only acknowledged to the
    // executor after its record is on stable storage.
    fsync(fileno(file));
#endif
}

} // namespace pva
