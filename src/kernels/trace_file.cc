#include "kernels/trace_file.hh"

#include <istream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace pva
{

namespace
{

bool
parseNumber(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    try {
        std::size_t pos = 0;
        out = std::stoull(tok, &pos, 0); // base 0: decimal or 0x hex
        return pos == tok.size();
    } catch (...) {
        return false;
    }
}

} // anonymous namespace

bool
parseTrace(std::istream &in, TraceFile &out, std::string &error)
{
    out.ops.clear();
    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string::size_type hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ss(line);
        std::string verb;
        if (!(ss >> verb))
            continue; // blank / comment-only line

        auto fail = [&](const char *what) {
            error = csprintf("line %u: %s", line_no, what);
            return false;
        };

        std::vector<std::uint64_t> args;
        std::string tok;
        while (ss >> tok) {
            std::uint64_t v;
            if (!parseNumber(tok, v))
                return fail("malformed number");
            args.push_back(v);
        }

        TraceOp op;
        if (verb == "poke") {
            if (args.size() != 2)
                return fail("poke needs <addr> <value>");
            op.kind = TraceOp::Kind::Poke;
            op.addr = args[0];
            op.value = static_cast<Word>(args[1]);
        } else if (verb == "read" || verb == "write") {
            bool is_read = verb == "read";
            std::size_t need = is_read ? 3 : 4;
            if (args.size() != need)
                return fail(is_read
                                ? "read needs <base> <stride> <length>"
                                : "write needs <base> <stride> <length> "
                                  "<seed>");
            if (args[1] == 0)
                return fail("stride must be >= 1");
            if (args[2] == 0 || args[2] > 32)
                return fail("length must be in 1..32");
            op.kind = is_read ? TraceOp::Kind::Read
                              : TraceOp::Kind::Write;
            op.cmd.base = args[0];
            op.cmd.stride = static_cast<std::uint32_t>(args[1]);
            op.cmd.length = static_cast<std::uint32_t>(args[2]);
            op.cmd.isRead = is_read;
            if (!is_read)
                op.value = static_cast<Word>(args[3]);
        } else if (verb == "barrier") {
            if (!args.empty())
                return fail("barrier takes no arguments");
            op.kind = TraceOp::Kind::Barrier;
        } else {
            return fail("unknown verb");
        }
        out.ops.push_back(op);
    }
    error.clear();
    return true;
}

ReplayResult
replayTrace(MemorySystem &sys, const TraceFile &trace,
            ClockingMode clocking)
{
    Simulation sim(clocking);
    sim.add(&sys);

    ReplayResult result;
    std::size_t next = 0;           ///< Next op to issue
    std::size_t outstanding = 0;    ///< Commands in flight
    bool at_barrier = false;

    sim.runUntil(
        [&] {
            for (Completion &c : sys.drainCompletions()) {
                --outstanding;
                for (std::size_t i = 0; i < c.data.size(); ++i) {
                    // Order-independent mix of (tag, slot, value).
                    std::uint64_t x = c.tag * 1000003u + i * 0x9e3779b9u +
                                      c.data[i];
                    x ^= x >> 33;
                    result.readChecksum += x * 0xff51afd7ed558ccdULL;
                }
            }
            if (at_barrier && outstanding == 0)
                at_barrier = false;

            while (!at_barrier && next < trace.ops.size()) {
                const TraceOp &op = trace.ops[next];
                if (op.kind == TraceOp::Kind::Poke) {
                    sys.memory().write(op.addr, op.value);
                    ++next;
                    continue;
                }
                if (op.kind == TraceOp::Kind::Barrier) {
                    ++next;
                    if (outstanding > 0) {
                        at_barrier = true;
                        break;
                    }
                    continue;
                }
                std::vector<Word> data;
                const std::vector<Word> *wd = nullptr;
                if (op.kind == TraceOp::Kind::Write) {
                    data.resize(op.cmd.length);
                    for (std::uint32_t i = 0; i < op.cmd.length; ++i)
                        data[i] = op.value + i;
                    wd = &data;
                }
                if (!sys.trySubmit(op.cmd, next, wd))
                    break;
                ++outstanding;
                ++result.commands;
                ++next;
            }
            return next >= trace.ops.size() && outstanding == 0;
        },
        100000000);

    result.cycles = sim.now();
    result.simTicks = sim.simTicks();
    result.cyclesSkipped = sim.cyclesSkipped();
    sys.recordSimPerf(sim.simTicks(), sim.cyclesSkipped(),
                      sim.cyclesPerSecond());
    return result;
}

} // namespace pva
