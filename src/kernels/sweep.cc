#include "kernels/sweep.hh"

#include "baselines/cacheline_system.hh"
#include "baselines/gathering_system.hh"
#include "core/pva_unit.hh"
#include "kernels/runner.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

const std::vector<SystemKind> &
allSystems()
{
    static const std::vector<SystemKind> systems = {
        SystemKind::PvaSdram,
        SystemKind::CacheLine,
        SystemKind::Gathering,
        SystemKind::PvaSram,
    };
    return systems;
}

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::PvaSdram:
        return "PVA SDRAM";
      case SystemKind::CacheLine:
        return "cache-line serial SDRAM";
      case SystemKind::Gathering:
        return "gathering pipelined SDRAM";
      case SystemKind::PvaSram:
        return "PVA SRAM";
    }
    return "?";
}

const char *
systemShortName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::PvaSdram:
        return "pva";
      case SystemKind::CacheLine:
        return "cacheline";
      case SystemKind::Gathering:
        return "gathering";
      case SystemKind::PvaSram:
        return "sram";
    }
    return "?";
}

std::unique_ptr<MemorySystem>
makeSystem(SystemKind kind, const SystemConfig &config)
{
    config.validate();
    const std::string name = systemShortName(kind);
    switch (kind) {
      case SystemKind::PvaSdram:
        return std::make_unique<PvaUnit>(name, config.toPva(false));
      case SystemKind::PvaSram:
        return std::make_unique<PvaUnit>(name, config.toPva(true));
      case SystemKind::CacheLine: {
        CacheLineConfig cl;
        cl.lineWords = config.bc.lineWords;
        cl.maxOutstanding = config.maxOutstanding;
        cl.optimisticLineReuse = config.optimisticLineReuse;
        return std::make_unique<CacheLineSystem>(name, cl);
      }
      case SystemKind::Gathering: {
        GatheringConfig ga;
        ga.timing = config.timing;
        ga.maxOutstanding = config.maxOutstanding;
        return std::make_unique<GatheringSystem>(name, ga);
      }
    }
    panic("unknown system kind");
}

SweepPoint
runPoint(const SweepRequest &request)
{
    const KernelSpec &spec = kernelSpec(request.kernel);
    const AlignmentPreset &preset =
        alignmentPresets().at(request.alignment);

    WorkloadConfig cfg;
    cfg.stride = request.stride;
    cfg.elements = request.elements;
    cfg.lineWords = request.config.bc.lineWords;
    cfg.streamBases = streamBases(preset, spec.numStreams,
                                  request.stride, request.elements);

    auto sys = makeSystem(request.system, request.config);
    // The clocking discipline travels with the system configuration so
    // sweep grids honor SystemConfig::clocking without every caller
    // having to mirror it into RunLimits.
    RunLimits limits = request.limits;
    limits.clocking = request.config.clocking;
    RunResult r = runKernelOn(*sys, request.kernel, cfg, limits);

    SweepPoint p{request.system, request.kernel, request.stride,
                 request.alignment, r.cycles, r.mismatches};
    p.simTicks = r.simTicks;
    p.cyclesSkipped = r.cyclesSkipped;
    return p;
}

SweepPoint
runPoint(SystemKind system, KernelId kernel, std::uint32_t stride,
         unsigned alignment, std::uint32_t elements)
{
    SweepRequest req;
    req.system = system;
    req.kernel = kernel;
    req.stride = stride;
    req.alignment = alignment;
    req.elements = elements;
    return runPoint(req);
}

MinMaxCycles
runAcrossAlignments(SystemKind system, KernelId kernel,
                    std::uint32_t stride, std::uint32_t elements)
{
    MinMaxCycles mm{kNeverCycle, 0};
    for (unsigned a = 0; a < alignmentPresets().size(); ++a) {
        SweepPoint p = runPoint(system, kernel, stride, a, elements);
        if (p.mismatches != 0) {
            throw SimError(
                SimErrorKind::Corruption, "sweep", kNeverCycle,
                csprintf("functional mismatch in %s/%s stride %u "
                         "alignment %u", systemName(system),
                         kernelSpec(kernel).name.c_str(), stride, a));
        }
        mm.min = std::min(mm.min, p.cycles);
        mm.max = std::max(mm.max, p.cycles);
    }
    return mm;
}

const std::vector<std::uint32_t> &
paperStrides()
{
    static const std::vector<std::uint32_t> strides = {1, 2, 4, 8, 16, 19};
    return strides;
}

} // namespace pva
