#include "kernels/sweep.hh"

#include "baselines/cacheline_system.hh"
#include "baselines/gathering_system.hh"
#include "baselines/pva_sram_system.hh"
#include "core/pva_unit.hh"
#include "kernels/runner.hh"
#include "sim/logging.hh"

namespace pva
{

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::PvaSdram:
        return "PVA SDRAM";
      case SystemKind::CacheLine:
        return "cache-line serial SDRAM";
      case SystemKind::Gathering:
        return "gathering pipelined SDRAM";
      case SystemKind::PvaSram:
        return "PVA SRAM";
    }
    return "?";
}

std::unique_ptr<MemorySystem>
makeSystem(SystemKind kind, const std::string &name)
{
    switch (kind) {
      case SystemKind::PvaSdram:
        return std::make_unique<PvaUnit>(name, PvaConfig{});
      case SystemKind::CacheLine:
        return std::make_unique<CacheLineSystem>(name);
      case SystemKind::Gathering:
        return std::make_unique<GatheringSystem>(name);
      case SystemKind::PvaSram:
        return std::make_unique<PvaSramSystem>(name);
    }
    panic("unknown system kind");
}

SweepPoint
runPoint(SystemKind system, KernelId kernel, std::uint32_t stride,
         unsigned alignment, std::uint32_t elements)
{
    const KernelSpec &spec = kernelSpec(kernel);
    const AlignmentPreset &preset = alignmentPresets().at(alignment);

    WorkloadConfig cfg;
    cfg.stride = stride;
    cfg.elements = elements;
    cfg.streamBases =
        streamBases(preset, spec.numStreams, stride, elements);

    auto sys = makeSystem(system, spec.name);
    RunResult r = runKernelOn(*sys, kernel, cfg);

    return {system, kernel, stride, alignment, r.cycles, r.mismatches};
}

SweepPoint
runPvaPoint(const PvaConfig &config, KernelId kernel, std::uint32_t stride,
            unsigned alignment, std::uint32_t elements)
{
    const KernelSpec &spec = kernelSpec(kernel);
    const AlignmentPreset &preset = alignmentPresets().at(alignment);

    WorkloadConfig cfg;
    cfg.stride = stride;
    cfg.elements = elements;
    cfg.lineWords = config.bc.lineWords;
    cfg.streamBases =
        streamBases(preset, spec.numStreams, stride, elements);

    PvaUnit sys(spec.name, config);
    RunResult r = runKernelOn(sys, kernel, cfg);
    return {config.useSram ? SystemKind::PvaSram : SystemKind::PvaSdram,
            kernel, stride, alignment, r.cycles, r.mismatches};
}

MinMaxCycles
runAcrossAlignments(SystemKind system, KernelId kernel,
                    std::uint32_t stride, std::uint32_t elements)
{
    MinMaxCycles mm{kNeverCycle, 0};
    for (unsigned a = 0; a < alignmentPresets().size(); ++a) {
        SweepPoint p = runPoint(system, kernel, stride, a, elements);
        if (p.mismatches != 0)
            panic("functional mismatch in %s/%s stride %u alignment %u",
                  systemName(system), kernelSpec(kernel).name.c_str(),
                  stride, a);
        mm.min = std::min(mm.min, p.cycles);
        mm.max = std::max(mm.max, p.cycles);
    }
    return mm;
}

const std::vector<std::uint32_t> &
paperStrides()
{
    static const std::vector<std::uint32_t> strides = {1, 2, 4, 8, 16, 19};
    return strides;
}

} // namespace pva
